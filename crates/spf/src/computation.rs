//! The SPF-IR `Computation`: an ordered list of statements with lowering
//! to the loop AST, C emission, and in-process execution.
//!
//! Statements in the same *fusion group* with identical iteration spaces
//! lower into a single loop nest (their kernels concatenated in statement
//! order); everything else lowers to its own nest, in statement order.
//! This realizes the execution schedules of the paper's SPF-IR for the
//! schedule shapes format conversion produces (sequences of possibly-fused
//! loop chains).

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use spf_codegen::ast::{CmpOp, Cond, Expr, SlotAlloc, Stmt as AStmt};
use spf_codegen::cemit::emit_c_function;
use spf_codegen::interp::{compile, execute, execute_quiet, ExecError, ExecStats, Program};
use spf_codegen::runtime::{ListOrder, OrderedList, RtEnv};
use spf_codegen::scan::{lin_to_expr, lower_set, LoweredVars, ScanError};
use spf_ir::expr::{LinExpr, VarId};

use crate::stmt::{Kernel, ListOrderSpec, Stmt};

/// Errors raised while lowering a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A loop kernel was attached to an empty iteration space or vice
    /// versa.
    ArityMismatch {
        /// The statement's label.
        label: String,
    },
    /// Statements in one fusion group have different iteration spaces.
    GroupSpaceMismatch {
        /// The offending statement's label.
        label: String,
    },
    /// Scanning the iteration space failed.
    Scan(ScanError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::ArityMismatch { label } => {
                write!(f, "statement `{label}`: kernel/iteration-space arity mismatch")
            }
            LowerError::GroupSpaceMismatch { label } => {
                write!(f, "statement `{label}`: fusion group mixes iteration spaces")
            }
            LowerError::Scan(e) => write!(f, "scan error: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<ScanError> for LowerError {
    fn from(e: ScanError) -> Self {
        LowerError::Scan(e)
    }
}

/// Registry of user-defined comparison functions, resolved when a
/// computation declares `ListOrderSpec::Custom(name)`. The paper requires
/// full definitions for functions appearing only in universal quantifiers;
/// this registry is where those definitions live at run time.
pub type ComparatorRegistry =
    BTreeMap<String, Arc<dyn Fn(&[i64], &[i64]) -> CmpOrdering + Send + Sync>>;

/// An SPF computation: ordered statements plus the set of live-out data
/// spaces used by dead-code elimination.
#[derive(Debug, Clone, Default)]
pub struct Computation {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Names that must survive dead-code elimination (the destination
    /// format's UFs, data arrays, and symbols).
    pub live_out: BTreeSet<String>,
}

/// A lowered computation ready to run: compiled program plus the list
/// declarations the runtime environment needs.
pub struct Compiled {
    program: Program,
    slots: SlotAlloc,
    ast: Vec<AStmt>,
    list_decls: Vec<(String, usize, ListOrderSpec, bool)>,
}

impl Compiled {
    /// The compiled interpreter program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The lowered loop AST (for inspection or C emission).
    pub fn ast(&self) -> &[AStmt] {
        &self.ast
    }

    /// Emits the computation as a C function (the paper's listing style).
    pub fn emit_c(&self, name: &str) -> String {
        emit_c_function(name, &self.ast)
    }

    /// Emits a complete, compilable C99 translation unit: the prelude,
    /// the `OrderedList` runtime, global declarations for every symbol,
    /// index array, data array, and list the program references, and the
    /// inspector function (list initializations first, then the lowered
    /// body). Custom comparators become `extern` functions named after
    /// the universal quantifier's user-defined function.
    pub fn emit_c_program(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(spf_codegen::cemit::C_PRELUDE);
        out.push_str(spf_codegen::cruntime::C_ORDERED_LIST_RUNTIME);
        out.push('\n');
        for sym in self.program.sym_names() {
            let _ = writeln!(out, "int {sym};");
        }
        for uf in self.program.uf_names() {
            let _ = writeln!(out, "int *{uf};");
        }
        for data in self.program.data_names() {
            let _ = writeln!(out, "double *{data};");
        }
        for list in self.program.list_names() {
            let _ = writeln!(out, "OrderedList {list};");
        }
        for (_, _, order, _) in &self.list_decls {
            if let ListOrderSpec::Custom(f) = order {
                let _ = writeln!(
                    out,
                    "extern int {f}(const int *a, const int *b, int width);"
                );
            }
        }
        let _ = writeln!(out, "\nvoid {name}(void) {{");
        for (list, width, order, unique) in &self.list_decls {
            let cmp = match order {
                ListOrderSpec::Insertion => "0".to_string(),
                ListOrderSpec::Lexicographic => "ol_cmp_lex".to_string(),
                ListOrderSpec::Morton => "ol_cmp_morton".to_string(),
                ListOrderSpec::Custom(f) => f.clone(),
            };
            let _ = writeln!(
                out,
                "  ol_init(&{list}, {width}, {cmp}, {});",
                i32::from(*unique)
            );
        }
        out.push_str(&spf_codegen::cemit::emit_c99_block(&self.ast, 1));
        out.push_str("}\n");
        out
    }

    fn declare_lists(
        &self,
        env: &mut RtEnv<'_>,
        comparators: &ComparatorRegistry,
    ) -> Result<(), ExecError> {
        for (name, width, order, unique) in &self.list_decls {
            let order = match order {
                ListOrderSpec::Insertion => ListOrder::Insertion,
                ListOrderSpec::Lexicographic => ListOrder::Lexicographic,
                ListOrderSpec::Morton => ListOrder::Morton,
                ListOrderSpec::Custom(f) => ListOrder::Custom(
                    comparators
                        .get(f)
                        .cloned()
                        .ok_or_else(|| ExecError::UnboundList(format!("comparator {f}")))?,
                ),
            };
            env.lists
                .insert(name.clone(), OrderedList::new(*width, order, *unique));
        }
        Ok(())
    }

    /// Executes against `env`, declaring any ordered lists first.
    ///
    /// # Errors
    /// Fails when a custom comparator is missing from `comparators` or
    /// execution itself errors.
    pub fn execute(
        &self,
        env: &mut RtEnv<'_>,
        comparators: &ComparatorRegistry,
    ) -> Result<ExecStats, ExecError> {
        self.declare_lists(env, comparators)?;
        execute(&self.program, env)
    }

    /// Executes like [`Compiled::execute`] but with [`ExecStats`] counting
    /// compiled out — the hot-path variant for callers that never read the
    /// counters (release benchmarks, the conversion engine).
    ///
    /// # Errors
    /// Fails when a custom comparator is missing from `comparators` or
    /// execution itself errors.
    pub fn execute_quiet(
        &self,
        env: &mut RtEnv<'_>,
        comparators: &ComparatorRegistry,
    ) -> Result<(), ExecError> {
        self.declare_lists(env, comparators)?;
        execute_quiet(&self.program, env)
    }

    /// Extra slots used (diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl Computation {
    /// Creates an empty computation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a statement (kept in its own fusion group until a fusion
    /// pass runs).
    pub fn add_stmt(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Marks a name as live-out.
    pub fn mark_live(&mut self, name: impl Into<String>) {
        self.live_out.insert(name.into());
    }

    /// Assigns unique fusion groups to statements that have none.
    pub fn normalize_groups(&mut self) {
        // usize::MAX means "unassigned"; give each its own group id above
        // any assigned one.
        let mut next = self
            .stmts
            .iter()
            .map(|s| s.fuse_group)
            .filter(|&g| g != usize::MAX)
            .max()
            .map_or(0, |g| g + 1);
        for s in &mut self.stmts {
            if s.fuse_group == usize::MAX {
                s.fuse_group = next;
                next += 1;
            }
        }
    }

    /// Lowers to the loop AST and compiles for execution.
    ///
    /// # Errors
    /// Returns a [`LowerError`] for malformed statements or unscannable
    /// iteration spaces.
    pub fn lower(&self) -> Result<Compiled, LowerError> {
        let mut me = self.clone();
        me.normalize_groups();
        let mut slots = SlotAlloc::new();
        let mut ast: Vec<AStmt> = Vec::new();
        let mut list_decls = Vec::new();

        let mut i = 0;
        while i < me.stmts.len() {
            let s = &me.stmts[i];
            if s.kernel.is_setup() {
                if s.iter_space.arity() != 0 {
                    return Err(LowerError::ArityMismatch { label: s.label.clone() });
                }
                if let Kernel::ListDecl { list, width, order, unique } = &s.kernel {
                    list_decls.push((list.clone(), *width, order.clone(), *unique));
                    ast.push(AStmt::Comment(format!(
                        "{list} = new OrderedList({width}, {order}, unique={unique})"
                    )));
                } else {
                    ast.push(setup_to_ast(&s.kernel)?);
                }
                i += 1;
                continue;
            }
            // Collect the fusion group: consecutive same-group loop stmts.
            // Statements with a search binding lower alone.
            let group = s.fuse_group;
            let space = s.iter_space.clone();
            let has_find = s.find.is_some();
            let mut members = vec![i];
            let mut j = i + 1;
            while !has_find
                && j < me.stmts.len()
                && me.stmts[j].fuse_group == group
                && !me.stmts[j].kernel.is_setup()
                && me.stmts[j].find.is_none()
            {
                if me.stmts[j].iter_space != space {
                    return Err(LowerError::GroupSpaceMismatch {
                        label: me.stmts[j].label.clone(),
                    });
                }
                members.push(j);
                j += 1;
            }
            let kernels: Vec<&Kernel> = members.iter().map(|&m| &me.stmts[m].kernel).collect();
            let labels: Vec<&str> =
                members.iter().map(|&m| me.stmts[m].label.as_str()).collect();
            let find = me.stmts[i].find.clone();
            let find_slot = find.as_ref().map(|f| slots.alloc(f.var.clone()));
            let mut err: Option<LowerError> = None;
            let lowered = lower_set(&space, &mut slots, |vars| {
                // With a search binding, kernel expressions see the find
                // variable as one extra tuple position.
                let mut kvars = vars.clone();
                if let (Some(f), Some(slot)) = (&find, find_slot) {
                    kvars.vars.push((f.var.clone(), slot));
                }
                let mut body = Vec::new();
                for (k, kernel) in kernels.iter().enumerate() {
                    body.push(AStmt::Comment(labels[k].to_string()));
                    match loop_kernel_to_ast(kernel, &kvars) {
                        Ok(s) => body.push(s),
                        Err(e) => err = Some(e),
                    }
                }
                let Some(f) = &find else { return body };
                let slot = find_slot.expect("find slot allocated");
                let (lo, hi, target) =
                    match (kexpr(&f.lo, vars), kexpr(&f.hi, vars), kexpr(&f.target, vars)) {
                        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => {
                            err = Some(LowerError::Scan(e));
                            return body;
                        }
                    };
                let key = Expr::uf_read(f.uf.clone(), Expr::Var(f.var.clone(), slot));
                if f.binary {
                    vec![AStmt::FindBinary {
                        var: f.var.clone(),
                        slot,
                        lo,
                        hi,
                        key: Box::new(key),
                        target: Box::new(target),
                        body,
                    }]
                } else {
                    // The paper's linear search: scan every candidate and
                    // guard on the membership equation (no early exit).
                    vec![AStmt::For {
                        var: f.var.clone(),
                        slot,
                        lo,
                        hi,
                        body: vec![AStmt::If {
                            cond: Cond::cmp(key, CmpOp::Eq, target),
                            body,
                        }],
                    }]
                }
            })?;
            if let Some(e) = err {
                return Err(e);
            }
            ast.extend(lowered);
            i = j;
        }
        let program = compile(&ast, &slots);
        Ok(Compiled { program, slots, ast, list_decls })
    }

    /// Convenience: lower and emit C.
    ///
    /// # Errors
    /// Propagates [`LowerError`].
    pub fn codegen(&self, fn_name: &str) -> Result<String, LowerError> {
        Ok(self.lower()?.emit_c(fn_name))
    }
}

/// Converts a kernel expression (variables = tuple positions) to an AST
/// expression.
fn kexpr(e: &LinExpr, vars: &LoweredVars) -> Result<Expr, ScanError> {
    lin_to_expr(e, &|v: VarId| vars.expr(v.index()))
}

/// Converts a setup-kernel expression, which must not mention tuple
/// variables.
fn sexpr(e: &LinExpr) -> Result<Expr, LowerError> {
    lin_to_expr(e, &|_v: VarId| {
        // Setup expressions are over symbols only; a variable here is a
        // synthesis bug surfaced as an unbound placeholder name.
        Expr::Sym("__setup_var__".into())
    })
    .map_err(LowerError::Scan)
}

fn setup_to_ast(k: &Kernel) -> Result<AStmt, LowerError> {
    Ok(match k {
        Kernel::UfAlloc { uf, size, init } => AStmt::UfAlloc {
            uf: uf.clone(),
            size: sexpr(size)?,
            init: sexpr(init)?,
        },
        Kernel::DataAlloc { arr, size_factors } => {
            let mut size = match size_factors.first() {
                Some(f) => sexpr(f)?,
                None => Expr::Const(0),
            };
            for f in size_factors.iter().skip(1) {
                size = Expr::mul(size, sexpr(f)?);
            }
            AStmt::DataAlloc { arr: arr.clone(), size }
        }
        Kernel::ListFinalize { list } => AStmt::ListFinalize { list: list.clone() },
        Kernel::ListToUf { list, dim, uf } => {
            AStmt::ListToUf { list: list.clone(), dim: *dim, uf: uf.clone() }
        }
        Kernel::SymSet { sym, value } => {
            AStmt::SymSet { sym: sym.clone(), value: sexpr(value)? }
        }
        Kernel::SymSetListLen { sym, list } => AStmt::SymSet {
            sym: sym.clone(),
            value: Expr::ListLen(list.clone()),
        },
        other => unreachable!("not a setup kernel: {other:?}"),
    })
}

fn loop_kernel_to_ast(k: &Kernel, vars: &LoweredVars) -> Result<AStmt, LowerError> {
    let out = match k {
        Kernel::UfWrite { uf, idx, value } => AStmt::UfWrite {
            uf: uf.clone(),
            idx: kexpr(idx, vars).map_err(LowerError::Scan)?,
            value: kexpr(value, vars).map_err(LowerError::Scan)?,
        },
        Kernel::UfMin { uf, idx, value } => AStmt::UfMin {
            uf: uf.clone(),
            idx: kexpr(idx, vars).map_err(LowerError::Scan)?,
            value: kexpr(value, vars).map_err(LowerError::Scan)?,
        },
        Kernel::UfMax { uf, idx, value } => AStmt::UfMax {
            uf: uf.clone(),
            idx: kexpr(idx, vars).map_err(LowerError::Scan)?,
            value: kexpr(value, vars).map_err(LowerError::Scan)?,
        },
        Kernel::ListInsert { list, args } => AStmt::ListInsert {
            list: list.clone(),
            args: args
                .iter()
                .map(|a| kexpr(a, vars))
                .collect::<Result<Vec<_>, _>>()
                .map_err(LowerError::Scan)?,
        },
        Kernel::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => AStmt::DataAxpy {
            y: y.clone(),
            y_idx: kexpr(y_idx, vars).map_err(LowerError::Scan)?,
            a: a.clone(),
            a_idx: kexpr(a_idx, vars).map_err(LowerError::Scan)?,
            x: x.clone(),
            x_idx: kexpr(x_idx, vars).map_err(LowerError::Scan)?,
        },
        Kernel::Copy { dst, dst_idx, src, src_idx } => AStmt::Copy {
            dst: dst.clone(),
            dst_idx: kexpr(dst_idx, vars).map_err(LowerError::Scan)?,
            src: src.clone(),
            src_idx: kexpr(src_idx, vars).map_err(LowerError::Scan)?,
        },
        other => {
            return Err(LowerError::ArityMismatch {
                label: format!("setup kernel {other:?} inside a loop"),
            })
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::parse_set;

    fn space(src: &str) -> spf_ir::Set {
        let mut s = parse_set(src).unwrap();
        s.simplify();
        s
    }

    /// COO histogram: rowcount[row1(n)] via UfMax of n+1 — end-to-end
    /// lower + execute.
    #[test]
    fn lower_and_execute_simple_inspector() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "alloc",
            Kernel::UfAlloc {
                uf: "count".into(),
                size: LinExpr::sym("NR"),
                init: LinExpr::constant(0),
            },
            spf_ir::Set::universe(vec![]),
        ));
        comp.add_stmt(Stmt::new(
            "count rows",
            Kernel::UfMax {
                uf: "count".into(),
                idx: LinExpr::uf(spf_ir::UfCall::new("row1", vec![LinExpr::var(VarId(0))])),
                value: LinExpr::var(VarId(0)).add(&LinExpr::constant(1)),
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new()
            .with_sym("NR", 3)
            .with_sym("NNZ", 5)
            .with_uf("row1", vec![0, 0, 1, 2, 2]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert_eq!(env.ufs["count"], vec![2, 3, 5]);
    }

    #[test]
    fn fused_group_lowers_to_one_nest() {
        let sp = space("{ [n] : 0 <= n < NNZ }");
        let mut comp = Computation::new();
        let mut s1 = Stmt::new(
            "a",
            Kernel::UfWrite {
                uf: "a".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)),
            },
            sp.clone(),
        );
        s1.fuse_group = 7;
        let mut s2 = Stmt::new(
            "b",
            Kernel::UfWrite {
                uf: "b".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)).scaled(2),
            },
            sp,
        );
        s2.fuse_group = 7;
        comp.add_stmt(s1);
        comp.add_stmt(s2);
        let compiled = comp.lower().unwrap();
        let c = compiled.emit_c("fused");
        // Exactly one for-loop header.
        assert_eq!(c.matches("for (").count(), 1, "{c}");
        let mut env = RtEnv::new()
            .with_sym("NNZ", 3)
            .with_uf("a", vec![0; 3])
            .with_uf("b", vec![0; 3]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert_eq!(env.ufs["a"], vec![0, 1, 2]);
        assert_eq!(env.ufs["b"], vec![0, 2, 4]);
    }

    #[test]
    fn unfused_stmts_lower_to_separate_nests() {
        let sp = space("{ [n] : 0 <= n < NNZ }");
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "a",
            Kernel::UfWrite {
                uf: "a".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)),
            },
            sp.clone(),
        ));
        comp.add_stmt(Stmt::new(
            "b",
            Kernel::UfWrite {
                uf: "b".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)),
            },
            sp,
        ));
        let c = comp.codegen("twice").unwrap();
        assert_eq!(c.matches("for (").count(), 2);
    }

    #[test]
    fn list_declaration_reaches_environment() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "decl P",
            Kernel::ListDecl {
                list: "P".into(),
                width: 2,
                order: ListOrderSpec::Lexicographic,
                unique: false,
            },
            spf_ir::Set::universe(vec![]),
        ));
        comp.add_stmt(Stmt::new(
            "insert",
            Kernel::ListInsert {
                list: "P".into(),
                args: vec![
                    LinExpr::uf(spf_ir::UfCall::new("row", vec![LinExpr::var(VarId(0))])),
                    LinExpr::uf(spf_ir::UfCall::new("col", vec![LinExpr::var(VarId(0))])),
                ],
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        comp.add_stmt(Stmt::new(
            "finalize",
            Kernel::ListFinalize { list: "P".into() },
            spf_ir::Set::universe(vec![]),
        ));
        comp.add_stmt(Stmt::new(
            "nd",
            Kernel::SymSetListLen { sym: "NP".into(), list: "P".into() },
            spf_ir::Set::universe(vec![]),
        ));
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new()
            .with_sym("NNZ", 2)
            .with_uf("row", vec![1, 0])
            .with_uf("col", vec![0, 5]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert_eq!(env.syms["NP"], 2);
        assert!(env.lists["P"].is_finalized());
        assert_eq!(env.lists["P"].rank(&[0, 5]).unwrap(), 0);
        let c = compiled.emit_c("mcoo_inspector");
        assert!(c.contains("new OrderedList(2, LEX, unique=false)"));
        assert!(c.contains("P.insert(row[n], col[n]);"));
    }

    #[test]
    fn custom_comparator_is_required() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "decl",
            Kernel::ListDecl {
                list: "L".into(),
                width: 1,
                order: ListOrderSpec::Custom("REVLEX".into()),
                unique: false,
            },
            spf_ir::Set::universe(vec![]),
        ));
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new();
        let err = compiled
            .execute(&mut env, &ComparatorRegistry::new())
            .unwrap_err();
        assert!(matches!(err, ExecError::UnboundList(_)));

        let mut reg = ComparatorRegistry::new();
        reg.insert("REVLEX".into(), Arc::new(|a: &[i64], b: &[i64]| b.cmp(a)));
        let mut env = RtEnv::new();
        compiled.execute(&mut env, &reg).unwrap();
        assert!(env.lists.contains_key("L"));
    }

    #[test]
    fn group_space_mismatch_is_error() {
        let mut comp = Computation::new();
        let mut s1 = Stmt::new(
            "a",
            Kernel::UfWrite {
                uf: "a".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::zero(),
            },
            space("{ [n] : 0 <= n < NNZ }"),
        );
        s1.fuse_group = 1;
        let mut s2 = s1.clone();
        s2.label = "b".into();
        s2.iter_space = space("{ [n] : 0 <= n < NR }");
        comp.add_stmt(s1);
        comp.add_stmt(s2);
        assert!(matches!(
            comp.lower(),
            Err(LowerError::GroupSpaceMismatch { .. })
        ));
    }
}
