//! Dataflow-graph rendering for computations.
//!
//! The paper's SPF-IR "can generate C code or a visual data flow graph to
//! help performance engineers identify optimization opportunities"; this
//! module provides the graph half as Graphviz DOT. Statements are boxes,
//! data spaces (index arrays, data arrays, ordered lists, symbols) are
//! ellipses; edges follow reads and writes. Live-out data spaces are
//! highlighted — dead-code elimination is literally the backward
//! traversal of this picture.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::computation::Computation;

/// Renders the computation's dataflow graph as Graphviz DOT.
pub fn to_dot(comp: &Computation, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");

    // Data-space nodes.
    let mut spaces: BTreeSet<String> = BTreeSet::new();
    for s in &comp.stmts {
        spaces.extend(s.reads());
        spaces.extend(s.writes());
    }
    for d in &spaces {
        let style = if comp.live_out.contains(d) {
            ", style=filled, fillcolor=lightgoldenrod"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"d_{d}\" [label=\"{d}\", shape=ellipse{style}];");
    }

    // Statement nodes and edges.
    for (k, s) in comp.stmts.iter().enumerate() {
        let _ = writeln!(
            out,
            "  \"s{k}\" [label=\"S{k}: {}\", shape=box, style=rounded];",
            s.label.replace('"', "'")
        );
        for r in s.reads() {
            let _ = writeln!(out, "  \"d_{r}\" -> \"s{k}\";");
        }
        for w in s.writes() {
            let _ = writeln!(out, "  \"s{k}\" -> \"d_{w}\";");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{Kernel, Stmt};
    use spf_ir::expr::{LinExpr, UfCall, VarId};
    use spf_ir::parse_set;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut space = parse_set("{ [n] : 0 <= n < NNZ }").unwrap();
        space.simplify();
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "populate out",
            Kernel::UfWrite {
                uf: "out".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::uf(UfCall::new("src", vec![LinExpr::var(VarId(0))])),
            },
            space,
        ));
        comp.mark_live("out");
        let dot = to_dot(&comp, "test");
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("\"d_src\" -> \"s0\";"));
        assert!(dot.contains("\"s0\" -> \"d_out\";"));
        // Live-out data spaces are highlighted.
        assert!(dot.contains("\"d_out\" [label=\"out\", shape=ellipse, style=filled"));
        assert!(dot.contains("\"d_src\" [label=\"src\", shape=ellipse];"));
    }

    #[test]
    fn quotes_in_labels_are_escaped() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "say \"hi\"",
            Kernel::SymSet { sym: "S".into(), value: LinExpr::constant(1) },
            spf_ir::Set::universe(vec![]),
        ));
        let dot = to_dot(&comp, "q");
        assert!(dot.contains("say 'hi'"));
    }
}
