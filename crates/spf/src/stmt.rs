//! Statements of the SPF intermediate representation.
//!
//! Mirroring the SPF-IR of the paper (COMPSAC'21), a statement couples an
//! executable *kernel* with an *iteration space* (a [`Set`]) and
//! read/write access information used by the dataflow transformations.
//! Setup kernels (allocations, list finalization, symbol assignment) have
//! an empty iteration space and run once.
//!
//! Kernels reference the tuple variables of their iteration space through
//! [`LinExpr`] variable ids (position `p` = tuple position `p`). A
//! multi-argument UF call inside a kernel expression denotes a rank lookup
//! in an `OrderedList` (the permutation `P(i, j)`); single-argument calls
//! are index-array reads.

use std::collections::BTreeSet;
use std::fmt;

use spf_ir::expr::{Atom, LinExpr};
use spf_ir::formula::Set;

/// Comparator specification for a list declaration, mirroring
/// [`spf_codegen::runtime::ListOrder`] but serializable/structural (the
/// actual closure for `Custom` is resolved from a registry at execution
/// time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListOrderSpec {
    /// Keep insertion order.
    Insertion,
    /// Lexicographic tuple order.
    Lexicographic,
    /// Morton / Z-order.
    Morton,
    /// Named user-defined comparator.
    Custom(String),
}

impl fmt::Display for ListOrderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListOrderSpec::Insertion => write!(f, "INSERTION"),
            ListOrderSpec::Lexicographic => write!(f, "LEX"),
            ListOrderSpec::Morton => write!(f, "MORTON"),
            ListOrderSpec::Custom(n) => write!(f, "{n}"),
        }
    }
}

/// The executable payload of a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kernel {
    /// `uf[idx] = value` per iteration.
    UfWrite {
        /// Destination index array.
        uf: String,
        /// Index expression over the iteration tuple.
        idx: LinExpr,
        /// Stored value expression.
        value: LinExpr,
    },
    /// `uf[idx] = min(uf[idx], value)` — synthesis Case 2.
    UfMin {
        /// Destination index array.
        uf: String,
        /// Index expression.
        idx: LinExpr,
        /// Candidate value.
        value: LinExpr,
    },
    /// `uf[idx] = max(uf[idx], value)` — synthesis Case 3.
    UfMax {
        /// Destination index array.
        uf: String,
        /// Index expression.
        idx: LinExpr,
        /// Candidate value.
        value: LinExpr,
    },
    /// `list.insert(args...)` per iteration — synthesis Cases 4/5.
    ListInsert {
        /// Destination ordered list.
        list: String,
        /// Key expressions.
        args: Vec<LinExpr>,
    },
    /// `y[y_idx] += a[a_idx] * x[x_idx]` per iteration — the
    /// multiply-accumulate of generated executors (SpMV and friends).
    DataAxpy {
        /// Accumulator data space.
        y: String,
        /// Accumulator index expression.
        y_idx: LinExpr,
        /// Matrix data space.
        a: String,
        /// Matrix data index expression.
        a_idx: LinExpr,
        /// Vector data space.
        x: String,
        /// Vector index expression.
        x_idx: LinExpr,
    },
    /// `dst[dst_idx] = src[src_idx]` per iteration — the copy operation.
    Copy {
        /// Destination data space.
        dst: String,
        /// Destination index expression.
        dst_idx: LinExpr,
        /// Source data space.
        src: String,
        /// Source index expression.
        src_idx: LinExpr,
    },
    /// Setup: allocate index array `uf` of `size` filled with `init`.
    UfAlloc {
        /// Array name.
        uf: String,
        /// Size expression (symbols only).
        size: LinExpr,
        /// Initial value expression.
        init: LinExpr,
    },
    /// Setup: allocate f64 data array of `size` zeros, where the size is
    /// a product of factor expressions (DIA allocates `ND * NR`).
    DataAlloc {
        /// Array name.
        arr: String,
        /// Product factors of the size (symbols only).
        size_factors: Vec<LinExpr>,
    },
    /// Setup: declare an ordered list before execution.
    ListDecl {
        /// List name.
        list: String,
        /// Key width.
        width: usize,
        /// Comparator.
        order: ListOrderSpec,
        /// Deduplicate equal keys at finalize.
        unique: bool,
    },
    /// Setup: finalize (sort + index) a list.
    ListFinalize {
        /// List name.
        list: String,
    },
    /// Setup: materialize key column `dim` of a finalized list into `uf`.
    ListToUf {
        /// List name.
        list: String,
        /// Key column.
        dim: usize,
        /// Destination array.
        uf: String,
    },
    /// Setup: `sym = value` (symbols only).
    SymSet {
        /// Symbol name.
        sym: String,
        /// Value expression.
        value: LinExpr,
    },
    /// Setup: `sym = list.len()`.
    SymSetListLen {
        /// Symbol name.
        sym: String,
        /// Source list.
        list: String,
    },
}

impl Kernel {
    /// Returns `true` for setup kernels, which have no iteration space.
    pub fn is_setup(&self) -> bool {
        matches!(
            self,
            Kernel::UfAlloc { .. }
                | Kernel::DataAlloc { .. }
                | Kernel::ListDecl { .. }
                | Kernel::ListFinalize { .. }
                | Kernel::ListToUf { .. }
                | Kernel::SymSet { .. }
                | Kernel::SymSetListLen { .. }
        )
    }
}

fn collect_expr_names(e: &LinExpr, out: &mut BTreeSet<String>) {
    fn collect_atom(a: &Atom, out: &mut BTreeSet<String>) {
        match a {
            Atom::Var(_) => {}
            Atom::Sym(s) => {
                out.insert(s.clone());
            }
            Atom::Uf(u) => {
                out.insert(u.name.clone());
                for arg in &u.args {
                    collect_expr_names(arg, out);
                }
            }
            Atom::Prod(fs) => {
                for x in fs {
                    collect_atom(x, out);
                }
            }
        }
    }
    for (_, a) in &e.terms {
        collect_atom(a, out);
    }
}

/// A search binding: inside the loop nest, bind `var` to the position in
/// `uf[lo..hi)` whose value equals `target`, then run the kernel. This is
/// how DIA's diagonal lookup `off(d) = j - i` executes: linearly by
/// default (the paper's generated code "tries every iteration to find the
/// d"), or by binary search when the UF's monotonic universal quantifier
/// licenses it (the paper's Figure 3 optimization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindSpec {
    /// Name of the bound variable; it becomes an extra tuple position
    /// (after the iteration-space tuple) for kernel expressions.
    pub var: String,
    /// The searched index array.
    pub uf: String,
    /// Inclusive lower search bound (over symbols).
    pub lo: LinExpr,
    /// Exclusive upper search bound (over symbols).
    pub hi: LinExpr,
    /// Target value, over the iteration-space tuple.
    pub target: LinExpr,
    /// Use binary search (requires `uf` monotone increasing).
    pub binary: bool,
}

/// One SPF statement: kernel + iteration space + schedule position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Human-readable label, e.g. `"populate col2"`.
    pub label: String,
    /// Executable payload.
    pub kernel: Kernel,
    /// Iteration space; `[]`-arity for setup kernels.
    pub iter_space: Set,
    /// Optional search binding appended to the iteration space.
    pub find: Option<FindSpec>,
    /// Fusion group: consecutive statements sharing a group id and an
    /// identical iteration space lower into one loop nest. Assigned by
    /// the fusion transformations; defaults to a unique id per statement.
    pub fuse_group: usize,
}

impl Stmt {
    /// Creates a statement in its own fusion group.
    pub fn new(label: impl Into<String>, kernel: Kernel, iter_space: Set) -> Self {
        Stmt {
            label: label.into(),
            kernel,
            iter_space,
            find: None,
            fuse_group: usize::MAX,
        }
    }

    /// Attaches a search binding (builder style).
    pub fn with_find(mut self, find: FindSpec) -> Self {
        self.find = Some(find);
        self
    }

    /// Names (UFs, data spaces, lists, symbols) this statement *reads*,
    /// including index arrays appearing in its iteration-space
    /// constraints.
    pub fn reads(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        match &self.kernel {
            Kernel::UfWrite { idx, value, .. }
            | Kernel::UfMin { uf: _, idx, value }
            | Kernel::UfMax { uf: _, idx, value } => {
                collect_expr_names(idx, &mut out);
                collect_expr_names(value, &mut out);
            }
            Kernel::ListInsert { args, .. } => {
                for a in args {
                    collect_expr_names(a, &mut out);
                }
            }
            Kernel::Copy { dst_idx, src, src_idx, .. } => {
                collect_expr_names(dst_idx, &mut out);
                collect_expr_names(src_idx, &mut out);
                out.insert(src.clone());
            }
            Kernel::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => {
                collect_expr_names(y_idx, &mut out);
                collect_expr_names(a_idx, &mut out);
                collect_expr_names(x_idx, &mut out);
                out.insert(y.clone()); // accumulator is read-modify-write
                out.insert(a.clone());
                out.insert(x.clone());
            }
            Kernel::UfAlloc { size, init, .. } => {
                collect_expr_names(size, &mut out);
                collect_expr_names(init, &mut out);
            }
            Kernel::DataAlloc { size_factors, .. } => {
                for e in size_factors {
                    collect_expr_names(e, &mut out);
                }
            }
            Kernel::ListDecl { .. } => {}
            Kernel::ListFinalize { list } | Kernel::SymSetListLen { list, .. } => {
                out.insert(list.clone());
            }
            Kernel::ListToUf { list, .. } => {
                out.insert(list.clone());
            }
            Kernel::SymSet { value, .. } => collect_expr_names(value, &mut out),
        }
        // Index arrays and symbols in the iteration space are read when
        // scanning it.
        for conj in self.iter_space.conjunctions() {
            for c in &conj.constraints {
                collect_expr_names(c.expr(), &mut out);
            }
        }
        if let Some(f) = &self.find {
            out.insert(f.uf.clone());
            collect_expr_names(&f.lo, &mut out);
            collect_expr_names(&f.hi, &mut out);
            collect_expr_names(&f.target, &mut out);
        }
        out
    }

    /// Names this statement *writes*.
    pub fn writes(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        match &self.kernel {
            Kernel::UfWrite { uf, .. }
            | Kernel::UfMin { uf, .. }
            | Kernel::UfMax { uf, .. }
            | Kernel::UfAlloc { uf, .. }
            | Kernel::ListToUf { uf, .. } => {
                out.insert(uf.clone());
            }
            Kernel::ListInsert { list, .. }
            | Kernel::ListDecl { list, .. }
            | Kernel::ListFinalize { list } => {
                out.insert(list.clone());
            }
            Kernel::Copy { dst, .. } => {
                out.insert(dst.clone());
            }
            Kernel::DataAxpy { y, .. } => {
                out.insert(y.clone());
            }
            Kernel::DataAlloc { arr, .. } => {
                out.insert(arr.clone());
            }
            Kernel::SymSet { sym, .. } | Kernel::SymSetListLen { sym, .. } => {
                out.insert(sym.clone());
            }
        }
        out
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} over {}", self.label, self.kernel, self.iter_space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::expr::{UfCall, VarId};
    use spf_ir::parse_set;

    fn coo_space() -> Set {
        let mut s = parse_set(
            "{ [n, ii, jj] : ii = row1(n) && jj = col1(n) && 0 <= n < NNZ }",
        )
        .unwrap();
        s.simplify();
        s
    }

    #[test]
    fn reads_include_iteration_space_ufs() {
        let s = Stmt::new(
            "copy",
            Kernel::Copy {
                dst: "Acsr".into(),
                dst_idx: LinExpr::var(VarId(0)),
                src: "Acoo".into(),
                src_idx: LinExpr::var(VarId(0)),
            },
            coo_space(),
        );
        let reads = s.reads();
        assert!(reads.contains("Acoo"));
        assert!(reads.contains("row1"));
        assert!(reads.contains("col1"));
        assert!(reads.contains("NNZ"));
        assert_eq!(s.writes().into_iter().collect::<Vec<_>>(), vec!["Acsr"]);
    }

    #[test]
    fn nested_uf_reads_collected() {
        let s = Stmt::new(
            "perm write",
            Kernel::UfWrite {
                uf: "col2".into(),
                idx: LinExpr::uf(UfCall::new(
                    "P",
                    vec![
                        LinExpr::uf(UfCall::new("row1", vec![LinExpr::var(VarId(0))])),
                        LinExpr::uf(UfCall::new("col1", vec![LinExpr::var(VarId(0))])),
                    ],
                )),
                value: LinExpr::var(VarId(2)),
            },
            coo_space(),
        );
        let reads = s.reads();
        assert!(reads.contains("P"));
        assert!(reads.contains("row1"));
        assert!(reads.contains("col1"));
        assert!(s.writes().contains("col2"));
    }

    #[test]
    fn setup_kernels_have_no_iteration() {
        assert!(Kernel::ListFinalize { list: "P".into() }.is_setup());
        assert!(Kernel::SymSet { sym: "ND".into(), value: LinExpr::constant(1) }.is_setup());
        assert!(!Kernel::Copy {
            dst: "A".into(),
            dst_idx: LinExpr::zero(),
            src: "B".into(),
            src_idx: LinExpr::zero(),
        }
        .is_setup());
    }

    #[test]
    fn list_kernels_read_write_correctly() {
        let fin = Stmt::new(
            "fin",
            Kernel::ListFinalize { list: "P".into() },
            Set::universe(vec![]),
        );
        assert!(fin.reads().contains("P"));
        assert!(fin.writes().contains("P"));
        let to_uf = Stmt::new(
            "mat",
            Kernel::ListToUf { list: "L".into(), dim: 0, uf: "off".into() },
            Set::universe(vec![]),
        );
        assert!(to_uf.reads().contains("L"));
        assert!(to_uf.writes().contains("off"));
    }
}
