//! Composable SPF transformations (§3.3 of the paper).
//!
//! The initial synthesized loop chain is correct but slow; these passes
//! implement the optimizations the paper applies:
//!
//! * [`remove_redundant`] — "if multiple statements cover the same data
//!   space we remove all but one of them" (e.g. the min *and* max updates
//!   both populating CSR's `rowptr`).
//! * [`dead_code_elimination`] — backward traversal of the dataflow graph
//!   from the live-out data spaces; this is what removes the permutation
//!   `P` when the source ordering already implies the destination
//!   ordering (the COO→CSR fast path).
//! * [`fuse_loops`] — read-reduction and producer–consumer fusion of
//!   adjacent statements with identical iteration spaces, subject to a
//!   conservative dependence test. DIA's copy loop correctly does *not*
//!   fuse with the loop building `off`, reproducing the limitation the
//!   paper reports.
//! * [`interchange`] — classic loop interchange on one statement's
//!   iteration space, as an example of the wider SPF transformation
//!   repertoire.

use std::collections::BTreeSet;

use spf_ir::expr::{LinExpr, VarId};
use spf_ir::formula::{Relation, Set};

use crate::computation::Computation;
use crate::stmt::Kernel;

/// Removes duplicate statements (identical kernel and iteration space),
/// and collapses min/max statement pairs that populate the same index
/// array over the same iteration space down to the min statement — the
/// paper's "same data space" redundancy rule. The remaining monotonic
/// enforcement (a sweep) reconstructs what the removed update provided.
///
/// Returns the number of statements removed.
pub fn remove_redundant(comp: &mut Computation) -> usize {
    let before = comp.stmts.len();
    // Exact duplicates.
    let mut seen: Vec<(Kernel, Set)> = Vec::new();
    comp.stmts.retain(|s| {
        let key = (s.kernel.clone(), s.iter_space.clone());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    // Min/max pairs over one data space: keep the min.
    let mut kept_min: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &comp.stmts {
        if let Kernel::UfMin { uf, .. } = &s.kernel {
            kept_min.insert((uf.clone(), s.iter_space.to_string()));
        }
    }
    comp.stmts.retain(|s| {
        if let Kernel::UfMax { uf, .. } = &s.kernel {
            !kept_min.contains(&(uf.clone(), s.iter_space.to_string()))
        } else {
            true
        }
    });
    before - comp.stmts.len()
}

/// Backward dead-code elimination from `comp.live_out`.
///
/// A statement is live when it writes a name in the live set; its reads
/// then join the live set. Everything else — including `OrderedList`
/// declarations, insert loops and finalizes for a permutation nobody
/// reads — is removed. Returns the number of statements removed.
pub fn dead_code_elimination(comp: &mut Computation) -> usize {
    let before = comp.stmts.len();
    let mut live = comp.live_out.clone();
    let mut keep = vec![false; comp.stmts.len()];
    for (k, s) in comp.stmts.iter().enumerate().rev() {
        let writes = s.writes();
        if writes.iter().any(|w| live.contains(w)) {
            keep[k] = true;
            live.extend(s.reads());
        }
    }
    let mut it = keep.iter();
    comp.stmts.retain(|_| *it.next().expect("keep mask length"));
    before - comp.stmts.len()
}

/// Returns `true` when statement `b` may join a fusion group ending in
/// statement `a` (same iteration space assumed):
///
/// * no flow dependence: `b` must not read anything `a` writes — a read
///   of `a`'s output would observe partially-populated state inside the
///   fused loop (this is what keeps DIA's copy loop apart from the `off`
///   loop);
/// * no anti dependence: `b` must not write anything `a` reads;
/// * no output dependence: they must not write a common name.
fn fusable(a: &crate::stmt::Stmt, b: &crate::stmt::Stmt) -> bool {
    if a.find.is_some() || b.find.is_some() {
        return false;
    }
    let aw = a.writes();
    let ar = a.reads();
    let bw = b.writes();
    let br = b.reads();
    aw.intersection(&br).next().is_none()
        && bw.intersection(&ar).next().is_none()
        && aw.intersection(&bw).next().is_none()
}

/// Greedy fusion of adjacent loop statements with identical iteration
/// spaces: both read-reduction fusion (the statements re-read the same
/// index arrays while scanning the same space) and producer–consumer
/// fusion fall out of the adjacency + dependence test. Returns the number
/// of fused groups formed.
pub fn fuse_loops(comp: &mut Computation) -> usize {
    comp.normalize_groups();
    let mut groups = 0;
    let mut i = 0;
    while i < comp.stmts.len() {
        if comp.stmts[i].kernel.is_setup() {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < comp.stmts.len() {
            let candidate = &comp.stmts[j];
            if candidate.kernel.is_setup()
                || candidate.iter_space != comp.stmts[i].iter_space
            {
                break;
            }
            // The candidate must be fusable with every member so far.
            if !(i..j).all(|m| fusable(&comp.stmts[m], &comp.stmts[j])) {
                break;
            }
            j += 1;
        }
        if j > i + 1 {
            let g = comp.stmts[i].fuse_group;
            for s in &mut comp.stmts[i..j] {
                s.fuse_group = g;
            }
            groups += 1;
        }
        i = j;
    }
    groups
}

/// Applies the full §3.3 optimization pipeline in the paper's order:
/// redundancy removal, dead-code elimination, then fusion. Returns
/// `(removed_redundant, removed_dead, fused_groups)`.
pub fn optimize(comp: &mut Computation) -> (usize, usize, usize) {
    let r = remove_redundant(comp);
    let d = dead_code_elimination(comp);
    let f = fuse_loops(comp);
    (r, d, f)
}

/// Interchanges two tuple positions of one statement's iteration space by
/// applying the permutation relation `{[..a..b..] -> [..b..a..]}` — the
/// textbook SPF transformation from §2.1 of the paper.
///
/// # Panics
/// Panics when `stmt_idx` or the positions are out of range.
pub fn interchange(comp: &mut Computation, stmt_idx: usize, p: usize, q: usize) {
    let stmt = &mut comp.stmts[stmt_idx];
    let arity = stmt.iter_space.arity() as usize;
    assert!(p < arity && q < arity, "interchange positions out of range");
    let in_names: Vec<String> = stmt.iter_space.tuple().to_vec();
    let mut out_names = in_names.clone();
    out_names.swap(p, q);
    let mut conj = spf_ir::Conjunction::new(2 * arity as u32);
    for k in 0..arity {
        let src = if k == p {
            q
        } else if k == q {
            p
        } else {
            k
        };
        conj.add(spf_ir::Constraint::eq(
            LinExpr::var(VarId((arity + k) as u32)),
            LinExpr::var(VarId(src as u32)),
        ));
    }
    let rel = Relation::from_conjunctions(in_names, out_names, vec![conj]);
    let mut new_space = rel.apply(&stmt.iter_space);
    new_space.simplify();
    // Kernel expressions index tuple positions; remap them.
    let remap = |e: &LinExpr| -> LinExpr {
        e.map_vars(&mut |v: VarId| {
            let idx = v.index();
            let new = if idx == p {
                q
            } else if idx == q {
                p
            } else {
                idx
            };
            LinExpr::var(VarId(new as u32))
        })
    };
    stmt.kernel = match &stmt.kernel {
        Kernel::UfWrite { uf, idx, value } => Kernel::UfWrite {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMin { uf, idx, value } => Kernel::UfMin {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMax { uf, idx, value } => Kernel::UfMax {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::ListInsert { list, args } => Kernel::ListInsert {
            list: list.clone(),
            args: args.iter().map(remap).collect(),
        },
        Kernel::Copy { dst, dst_idx, src, src_idx } => Kernel::Copy {
            dst: dst.clone(),
            dst_idx: remap(dst_idx),
            src: src.clone(),
            src_idx: remap(src_idx),
        },
        setup => setup.clone(),
    };
    stmt.iter_space = new_space;
}

/// Skews tuple position `p` of one statement's iteration space by
/// `factor` times position `q` (`p' = p + factor * q`), applying the
/// relation `{[.., x, .., y, ..] -> [.., x + factor*y, .., y, ..]}` and
/// compensating in the kernel — the loop-skewing transformation the paper
/// lists among SPF's repertoire.
///
/// # Panics
/// Panics when indices are out of range or equal.
pub fn skew(comp: &mut Computation, stmt_idx: usize, p: usize, q: usize, factor: i64) {
    let stmt = &mut comp.stmts[stmt_idx];
    let arity = stmt.iter_space.arity() as usize;
    assert!(p < arity && q < arity && p != q, "skew positions invalid");
    let in_names: Vec<String> = stmt.iter_space.tuple().to_vec();
    let out_names = in_names.clone();
    let mut conj = spf_ir::Conjunction::new(2 * arity as u32);
    for k in 0..arity {
        let mut rhs = LinExpr::var(VarId(k as u32));
        if k == p {
            rhs = rhs.add(&LinExpr::var(VarId(q as u32)).scaled(factor));
        }
        conj.add(spf_ir::Constraint::eq(
            LinExpr::var(VarId((arity + k) as u32)),
            rhs,
        ));
    }
    let rel = Relation::from_conjunctions(in_names, out_names, vec![conj]);
    let mut new_space = rel.apply(&stmt.iter_space);
    new_space.simplify();
    // Kernel sees p' = p + factor*q, so substitute p := p' - factor*q.
    let repl = LinExpr::var(VarId(p as u32))
        .add(&LinExpr::var(VarId(q as u32)).scaled(-factor));
    let remap = |e: &LinExpr| -> LinExpr { e.substitute_var(VarId(p as u32), &repl) };
    stmt.kernel = remap_kernel(&stmt.kernel, &remap);
    stmt.iter_space = new_space;
}

/// Applies an expression rewriter to every expression of a loop kernel.
fn remap_kernel(k: &Kernel, remap: &dyn Fn(&LinExpr) -> LinExpr) -> Kernel {
    match k {
        Kernel::UfWrite { uf, idx, value } => Kernel::UfWrite {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMin { uf, idx, value } => Kernel::UfMin {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMax { uf, idx, value } => Kernel::UfMax {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::ListInsert { list, args } => Kernel::ListInsert {
            list: list.clone(),
            args: args.iter().map(remap).collect(),
        },
        Kernel::Copy { dst, dst_idx, src, src_idx } => Kernel::Copy {
            dst: dst.clone(),
            dst_idx: remap(dst_idx),
            src: src.clone(),
            src_idx: remap(src_idx),
        },
        Kernel::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => Kernel::DataAxpy {
            y: y.clone(),
            y_idx: remap(y_idx),
            a: a.clone(),
            a_idx: remap(a_idx),
            x: x.clone(),
            x_idx: remap(x_idx),
        },
        setup => setup.clone(),
    }
}

/// Shifts tuple position `p` of one statement's iteration space by a
/// constant `offset`, applying the relation
/// `{[.., x, ..] -> [.., x + offset, ..]}` and compensating in the kernel
/// expressions — another member of the standard SPF repertoire (loop
/// shifting/retiming).
///
/// # Panics
/// Panics when `stmt_idx` or `p` are out of range.
pub fn shift(comp: &mut Computation, stmt_idx: usize, p: usize, offset: i64) {
    let stmt = &mut comp.stmts[stmt_idx];
    let arity = stmt.iter_space.arity() as usize;
    assert!(p < arity, "shift position out of range");
    let in_names: Vec<String> = stmt.iter_space.tuple().to_vec();
    let out_names = in_names.clone();
    let mut conj = spf_ir::Conjunction::new(2 * arity as u32);
    for k in 0..arity {
        let mut rhs = LinExpr::var(VarId(k as u32));
        if k == p {
            rhs = rhs.add(&LinExpr::constant(offset));
        }
        conj.add(spf_ir::Constraint::eq(
            LinExpr::var(VarId((arity + k) as u32)),
            rhs,
        ));
    }
    let rel = Relation::from_conjunctions(in_names, out_names, vec![conj]);
    let mut new_space = rel.apply(&stmt.iter_space);
    new_space.simplify();
    // Kernel expressions see the shifted variable; substitute x := x - offset.
    let remap = |e: &LinExpr| -> LinExpr {
        e.substitute_var(
            VarId(p as u32),
            &LinExpr::var(VarId(p as u32)).add(&LinExpr::constant(-offset)),
        )
    };
    stmt.kernel = match &stmt.kernel {
        Kernel::UfWrite { uf, idx, value } => Kernel::UfWrite {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMin { uf, idx, value } => Kernel::UfMin {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::UfMax { uf, idx, value } => Kernel::UfMax {
            uf: uf.clone(),
            idx: remap(idx),
            value: remap(value),
        },
        Kernel::ListInsert { list, args } => Kernel::ListInsert {
            list: list.clone(),
            args: args.iter().map(remap).collect(),
        },
        Kernel::Copy { dst, dst_idx, src, src_idx } => Kernel::Copy {
            dst: dst.clone(),
            dst_idx: remap(dst_idx),
            src: src.clone(),
            src_idx: remap(src_idx),
        },
        Kernel::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => Kernel::DataAxpy {
            y: y.clone(),
            y_idx: remap(y_idx),
            a: a.clone(),
            a_idx: remap(a_idx),
            x: x.clone(),
            x_idx: remap(x_idx),
        },
        setup => setup.clone(),
    };
    stmt.iter_space = new_space;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::ComparatorRegistry;
    use crate::stmt::Stmt;
    use spf_codegen::runtime::RtEnv;
    use spf_ir::parse_set;
    use spf_ir::UfCall;

    fn space(src: &str) -> Set {
        let mut s = parse_set(src).unwrap();
        s.simplify();
        s
    }

    fn uf_write(uf: &str, space_src: &str) -> Stmt {
        Stmt::new(
            format!("write {uf}"),
            Kernel::UfWrite {
                uf: uf.into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)),
            },
            space(space_src),
        )
    }

    #[test]
    fn dce_keeps_transitive_producers() {
        let mut comp = Computation::new();
        // temp <- source; out <- temp; dead <- source.
        comp.add_stmt(Stmt::new(
            "make temp",
            Kernel::UfWrite {
                uf: "temp".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::uf(UfCall::new("source", vec![LinExpr::var(VarId(0))])),
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        comp.add_stmt(Stmt::new(
            "make out",
            Kernel::UfWrite {
                uf: "out".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::uf(UfCall::new("temp", vec![LinExpr::var(VarId(0))])),
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        comp.add_stmt(Stmt::new(
            "make dead",
            Kernel::UfWrite {
                uf: "dead".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::uf(UfCall::new("source", vec![LinExpr::var(VarId(0))])),
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        comp.mark_live("out");
        let removed = dead_code_elimination(&mut comp);
        assert_eq!(removed, 1);
        assert_eq!(comp.stmts.len(), 2);
        assert!(comp.stmts.iter().all(|s| !s.writes().contains("dead")));
    }

    #[test]
    fn dce_removes_unused_permutation_chain() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "decl P",
            Kernel::ListDecl {
                list: "P".into(),
                width: 2,
                order: crate::stmt::ListOrderSpec::Lexicographic,
                unique: false,
            },
            Set::universe(vec![]),
        ));
        comp.add_stmt(Stmt::new(
            "insert P",
            Kernel::ListInsert {
                list: "P".into(),
                args: vec![LinExpr::var(VarId(0))],
            },
            space("{ [n] : 0 <= n < NNZ }"),
        ));
        comp.add_stmt(Stmt::new(
            "finalize P",
            Kernel::ListFinalize { list: "P".into() },
            Set::universe(vec![]),
        ));
        comp.add_stmt(uf_write("col2", "{ [n] : 0 <= n < NNZ }"));
        comp.mark_live("col2");
        dead_code_elimination(&mut comp);
        assert_eq!(comp.stmts.len(), 1);
        assert_eq!(comp.stmts[0].label, "write col2");
    }

    #[test]
    fn redundant_min_max_pair_collapses_to_min() {
        let sp = "{ [n] : 0 <= n < NNZ }";
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "min rowptr",
            Kernel::UfMin {
                uf: "rowptr".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)),
            },
            space(sp),
        ));
        comp.add_stmt(Stmt::new(
            "max rowptr",
            Kernel::UfMax {
                uf: "rowptr".into(),
                idx: LinExpr::var(VarId(0)).add(&LinExpr::constant(1)),
                value: LinExpr::var(VarId(0)).add(&LinExpr::constant(1)),
            },
            space(sp),
        ));
        let removed = remove_redundant(&mut comp);
        assert_eq!(removed, 1);
        assert!(matches!(comp.stmts[0].kernel, Kernel::UfMin { .. }));
    }

    #[test]
    fn exact_duplicates_removed() {
        let mut comp = Computation::new();
        comp.add_stmt(uf_write("a", "{ [n] : 0 <= n < NNZ }"));
        comp.add_stmt(uf_write("a", "{ [n] : 0 <= n < NNZ }"));
        assert_eq!(remove_redundant(&mut comp), 1);
    }

    #[test]
    fn fusion_joins_independent_writers() {
        let sp = "{ [n] : 0 <= n < NNZ }";
        let mut comp = Computation::new();
        comp.add_stmt(uf_write("a", sp));
        comp.add_stmt(uf_write("b", sp));
        comp.add_stmt(uf_write("c", sp));
        assert_eq!(fuse_loops(&mut comp), 1);
        let g = comp.stmts[0].fuse_group;
        assert!(comp.stmts.iter().all(|s| s.fuse_group == g));
        let c = comp.codegen("fused").unwrap();
        assert_eq!(c.matches("for (").count(), 1);
    }

    #[test]
    fn fusion_blocked_by_flow_dependence() {
        let sp = "{ [n] : 0 <= n < NNZ }";
        let mut comp = Computation::new();
        comp.add_stmt(uf_write("off", sp));
        // Reads `off` — like DIA's copy loop; must not fuse.
        comp.add_stmt(Stmt::new(
            "copy",
            Kernel::UfWrite {
                uf: "out".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::uf(UfCall::new("off", vec![LinExpr::var(VarId(0))])),
            },
            space(sp),
        ));
        assert_eq!(fuse_loops(&mut comp), 0);
        let c = comp.codegen("unfused").unwrap();
        assert_eq!(c.matches("for (").count(), 2);
    }

    #[test]
    fn interchange_swaps_loop_order() {
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "visit",
            Kernel::UfWrite {
                uf: "cell".into(),
                idx: LinExpr::var(VarId(0))
                    .scaled(4)
                    .add(&LinExpr::var(VarId(1))),
                value: LinExpr::constant(1),
            },
            space("{ [i, j] : 0 <= i < 3 && 0 <= j < 4 }"),
        ));
        interchange(&mut comp, 0, 0, 1);
        let c = comp.codegen("ic").unwrap();
        // Outer loop now runs to 4 (old j), inner to 3 (old i).
        let outer = c.find("< 4").unwrap();
        let inner = c.find("< 3").unwrap();
        assert!(outer < inner, "{c}");
        // Execute and confirm all 12 cells visited.
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new().with_uf("cell", vec![0; 12]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert!(env.ufs["cell"].iter().all(|&x| x == 1));
    }

    #[test]
    fn shift_preserves_semantics() {
        use crate::computation::ComparatorRegistry;
        use spf_codegen::runtime::RtEnv;
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "fill",
            Kernel::UfWrite {
                uf: "out".into(),
                idx: LinExpr::var(VarId(0)),
                value: LinExpr::var(VarId(0)).scaled(3),
            },
            space("{ [n] : 0 <= n < 5 }"),
        ));
        shift(&mut comp, 0, 0, 10);
        // Loop now runs 10..15 but writes the same elements.
        let c = comp.codegen("shifted").unwrap();
        assert!(c.contains("= 10;"), "{c}");
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new().with_uf("out", vec![0; 5]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert_eq!(env.ufs["out"], vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn skew_preserves_semantics() {
        use crate::computation::ComparatorRegistry;
        use spf_codegen::runtime::RtEnv;
        // Visit a 3x4 rectangle writing cell[4i + j]; skew j by i.
        let mut comp = Computation::new();
        comp.add_stmt(Stmt::new(
            "visit",
            Kernel::UfWrite {
                uf: "cell".into(),
                idx: LinExpr::var(VarId(0)).scaled(4).add(&LinExpr::var(VarId(1))),
                value: LinExpr::constant(1),
            },
            space("{ [i, j] : 0 <= i < 3 && 0 <= j < 4 }"),
        ));
        skew(&mut comp, 0, 1, 0, 1); // j' = j + i: wavefront schedule
        let compiled = comp.lower().unwrap();
        let mut env = RtEnv::new().with_uf("cell", vec![0; 12]);
        compiled.execute(&mut env, &ComparatorRegistry::new()).unwrap();
        assert!(env.ufs["cell"].iter().all(|&x| x == 1), "{:?}", env.ufs["cell"]);
    }

    #[test]
    fn optimize_runs_full_pipeline() {
        let sp = "{ [n] : 0 <= n < NNZ }";
        let mut comp = Computation::new();
        comp.add_stmt(uf_write("keep", sp));
        comp.add_stmt(uf_write("keep", sp)); // duplicate
        comp.add_stmt(uf_write("dead", sp)); // dead
        comp.add_stmt(uf_write("also", sp)); // fusable with keep
        comp.mark_live("keep");
        comp.mark_live("also");
        let (r, d, f) = optimize(&mut comp);
        assert_eq!((r, d, f), (1, 1, 1));
        assert_eq!(comp.stmts.len(), 2);
    }
}
