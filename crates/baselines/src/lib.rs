//! # sparse-baselines
//!
//! Comparator models for the paper's evaluation: TACO, SPARSKIT, and
//! Intel MKL conversion routines (Figure 2) and HiCOO's hand-written
//! z-Morton reordering (Table 4).
//!
//! The Figure-2 models are loop-AST programs executed by the same
//! interpreter as the synthesized inspectors, so comparisons measure
//! algorithmic structure (passes, sorts, searches), not dispatch
//! technology. The HiCOO model is native, hand-optimized Rust — matching
//! the paper, where the comparison is against highly optimized
//! hand-written code. See DESIGN.md ("Substitutions") for the full
//! rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fig2;
pub mod hicoo;
pub mod vm;

pub use fig2::{
    coo_to_csr, coo_to_csc, coo_to_dia, csr_to_csc, run_coo_to_csc, run_coo_to_csr,
    run_coo_to_dia, run_csr_to_csc, Library,
};
pub use hicoo::hicoo_morton_sort3;
pub use vm::{RoutineBuilder, VmRoutine};
