//! The baseline virtual-machine harness.
//!
//! Every Figure-2 comparator (TACO, SPARSKIT, Intel MKL) is modelled as a
//! hand-written loop-AST program executed by the *same* interpreter that
//! runs synthesized inspectors. This keeps the comparison about
//! *algorithmic structure* — how many passes, whether a sort happens,
//! whether lookups are direct or searched — rather than about
//! native-vs-interpreted dispatch, mirroring the paper's setup where both
//! sides compile to C. (See DESIGN.md, "Substitutions".)

use spf_codegen::ast::{CmpOp, Cond, Expr, Slot, SlotAlloc, Stmt};
use spf_codegen::interp::{compile, execute, ExecError, ExecStats, Program};
use spf_codegen::runtime::{ListOrder, OrderedList, RtEnv};

/// A compiled baseline routine plus the ordered lists it needs declared.
pub struct VmRoutine {
    program: Program,
    lists: Vec<(String, usize, ListOrder, bool)>,
}

impl VmRoutine {
    /// Executes against `env`, declaring lists first.
    ///
    /// # Errors
    /// Propagates interpreter errors.
    pub fn execute(&self, env: &mut RtEnv<'_>) -> Result<ExecStats, ExecError> {
        for (name, width, order, unique) in &self.lists {
            env.lists
                .insert(name.clone(), OrderedList::new(*width, order.clone(), *unique));
        }
        execute(&self.program, env)
    }
}

/// Incremental builder for baseline AST programs.
pub struct RoutineBuilder {
    slots: SlotAlloc,
    stmts: Vec<Stmt>,
    lists: Vec<(String, usize, ListOrder, bool)>,
}

impl Default for RoutineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RoutineBuilder { slots: SlotAlloc::new(), stmts: Vec::new(), lists: Vec::new() }
    }

    /// Declares an ordered list.
    pub fn list(&mut self, name: &str, width: usize, order: ListOrder, unique: bool) {
        self.lists.push((name.to_string(), width, order, unique));
    }

    /// Appends a statement.
    pub fn push(&mut self, s: Stmt) {
        self.stmts.push(s);
    }

    /// `for (v = lo; v < hi; v++) body(v)` with a fresh slot.
    pub fn for_loop(
        &mut self,
        var: &str,
        lo: Expr,
        hi: Expr,
        body: impl FnOnce(&mut Self, Expr) -> Vec<Stmt>,
    ) {
        let slot = self.slots.alloc(var);
        let v = Expr::Var(var.to_string(), slot);
        let body = body(self, v);
        self.stmts.push(Stmt::For { var: var.to_string(), slot, lo, hi, body });
    }

    /// Allocates a fresh loop slot without pushing a statement (for nested
    /// loops built inside closures).
    pub fn fresh(&mut self, var: &str) -> (Slot, Expr) {
        let slot = self.slots.alloc(var);
        (slot, Expr::Var(var.to_string(), slot))
    }

    /// Finishes and compiles the routine.
    pub fn build(self) -> VmRoutine {
        VmRoutine { program: compile(&self.stmts, &self.slots), lists: self.lists }
    }
}

/// `uf[idx]`.
pub fn rd(uf: &str, idx: Expr) -> Expr {
    Expr::uf_read(uf, idx)
}

/// `uf[idx] = value;`
pub fn wr(uf: &str, idx: Expr, value: Expr) -> Stmt {
    Stmt::UfWrite { uf: uf.into(), idx, value }
}

/// `uf[idx] = uf[idx] + 1;`
pub fn incr(uf: &str, idx: Expr) -> Stmt {
    wr(
        uf,
        idx.clone(),
        Expr::add(rd(uf, idx), Expr::Const(1)),
    )
}

/// A symbolic constant.
pub fn sym(name: &str) -> Expr {
    Expr::Sym(name.into())
}

/// An integer literal.
pub fn c(v: i64) -> Expr {
    Expr::Const(v)
}

/// Allocation statement for an integer array.
pub fn alloc(uf: &str, size: Expr, init: i64) -> Stmt {
    Stmt::UfAlloc { uf: uf.into(), size, init: Expr::Const(init) }
}

/// Allocation statement for a data array.
pub fn dalloc(arr: &str, size: Expr) -> Stmt {
    Stmt::DataAlloc { arr: arr.into(), size }
}

/// `dst[di] = src[si];`
pub fn copy(dst: &str, di: Expr, src: &str, si: Expr) -> Stmt {
    Stmt::Copy { dst: dst.into(), dst_idx: di, src: src.into(), src_idx: si }
}

/// Single-comparison guard.
pub fn guard(lhs: Expr, op: CmpOp, rhs: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::If { cond: Cond::cmp(lhs, op, rhs), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_histogram() {
        let mut b = RoutineBuilder::new();
        b.push(alloc("h", sym("NR"), 0));
        b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
            vec![incr("h", rd("row", n))]
        });
        let routine = b.build();
        let mut env = RtEnv::new()
            .with_sym("NR", 3)
            .with_sym("NNZ", 4)
            .with_uf("row", vec![0, 2, 2, 1]);
        routine.execute(&mut env).unwrap();
        assert_eq!(env.ufs["h"], vec![1, 1, 2]);
    }

    #[test]
    fn nested_loop_via_fresh() {
        let mut b = RoutineBuilder::new();
        b.push(alloc("out", c(1), 0));
        let (islot, iexpr) = b.fresh("i");
        let (jslot, jexpr) = b.fresh("j");
        b.push(Stmt::For {
            var: "i".into(),
            slot: islot,
            lo: c(0),
            hi: c(3),
            body: vec![Stmt::For {
                var: "j".into(),
                slot: jslot,
                lo: c(0),
                hi: c(3),
                body: vec![wr(
                    "out",
                    c(0),
                    Expr::add(rd("out", c(0)), Expr::add(iexpr.clone(), jexpr.clone())),
                )],
            }],
        });
        let routine = b.build();
        let mut env = RtEnv::new();
        routine.execute(&mut env).unwrap();
        // sum over i,j in 0..3 of (i+j) = 2 * 3 * (0+1+2) = 18
        assert_eq!(env.ufs["out"], vec![18]);
    }
}
