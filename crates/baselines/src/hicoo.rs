//! The hand-written HiCOO-style z-Morton reordering step (Table 4
//! comparator).
//!
//! The paper describes HiCOO's approach: "Hand-written z-Morton ordering
//! splits the original tensor into smaller kernels and then applies a
//! quick Morton sort to sort each block", which beats the synthesized
//! whole-tensor `OrderedList` sort (the paper reports a 1.64× slowdown
//! for the synthesized code). This module is the *native, hand-optimized*
//! comparator: Morton block keys are precomputed once, nonzeros are
//! bucketed by block, and each (small) block is sorted independently.

use sparse_formats::{Coo3Tensor, MortonCoo3Tensor};
use spf_codegen::morton::{bits_for_extent, morton_encode};

/// Reorders an order-3 COO tensor into Morton order the HiCOO way:
/// block-major bucketing by the Morton code of the block coordinates,
/// then a per-block sort of the low-order Morton bits.
///
/// `block_bits` is the log2 of the block edge length (HiCOO uses small
/// blocks, e.g. `2^7 = 128`).
pub fn hicoo_morton_sort3(t: &Coo3Tensor, block_bits: u32) -> MortonCoo3Tensor {
    let bits = bits_for_extent(t.nr.max(t.nc).max(t.nz)).max(block_bits);
    let nnz = t.nnz();

    // Pass 1: precompute full Morton keys once (the "quick" part — the
    // comparison becomes a cheap integer compare, and the block id is the
    // key's high bits).
    let mut keys: Vec<(u128, u32)> = Vec::with_capacity(nnz);
    for n in 0..nnz {
        let code = morton_encode(&[t.i0[n], t.i1[n], t.i2[n]], bits);
        keys.push((code, n as u32));
    }

    // Pass 2: bucket by block id (stable counting sort over the high
    // bits), mirroring HiCOO's block-major layout.
    let block_shift = 3 * block_bits;
    let nblocks_pow = 3 * (bits - block_bits);
    if nblocks_pow <= 20 {
        let nbuckets = 1usize << nblocks_pow;
        let mut counts = vec![0usize; nbuckets + 1];
        for (code, _) in &keys {
            counts[(code >> block_shift) as usize + 1] += 1;
        }
        for b in 0..nbuckets {
            counts[b + 1] += counts[b];
        }
        let mut bucketed = vec![(0u128, 0u32); nnz];
        let mut cursor = counts.clone();
        for &(code, n) in &keys {
            let b = (code >> block_shift) as usize;
            bucketed[cursor[b]] = (code, n);
            cursor[b] += 1;
        }
        // Pass 3: small per-block sorts on the low bits.
        for b in 0..nbuckets {
            let (s, e) = (counts[b], counts[b + 1]);
            if e - s > 1 {
                bucketed[s..e].sort_unstable_by_key(|&(code, _)| code);
            }
        }
        keys = bucketed;
    } else {
        // Too many blocks to bucket densely; fall back to one global
        // unstable sort on the precomputed keys (still much cheaper than
        // comparator-driven sorting).
        keys.sort_unstable_by_key(|&(code, _)| code);
    }

    // Pass 4: permute the tensor.
    let mut out = Coo3Tensor {
        nr: t.nr,
        nc: t.nc,
        nz: t.nz,
        i0: Vec::with_capacity(nnz),
        i1: Vec::with_capacity(nnz),
        i2: Vec::with_capacity(nnz),
        val: Vec::with_capacity(nnz),
    };
    for &(_, n) in &keys {
        let n = n as usize;
        out.i0.push(t.i0[n]);
        out.i1.push(t.i1[n]);
        out.i2.push(t.i2[n]);
        out.val.push(t.val[n]);
    }
    MortonCoo3Tensor { coo: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(seed: u64, nnz: usize, extent: usize) -> Coo3Tensor {
        // Simple LCG so this module stays dependency-free.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % extent
        };
        let mut i0 = Vec::new();
        let mut i1 = Vec::new();
        let mut i2 = Vec::new();
        let mut val = Vec::new();
        for k in 0..nnz {
            i0.push(next() as i64);
            i1.push(next() as i64);
            i2.push(next() as i64);
            val.push(k as f64);
        }
        Coo3Tensor::from_coords((extent, extent, extent), i0, i1, i2, val).unwrap()
    }

    #[test]
    fn matches_reference_morton_order() {
        let t = tensor(1, 500, 64);
        let got = hicoo_morton_sort3(&t, 2);
        got.validate().unwrap();
        let want = MortonCoo3Tensor::from_coo3(&t);
        // Same coordinate sequence (values may differ on exact duplicate
        // coordinates, which this generator can produce).
        assert_eq!(got.coo.i0, want.coo.i0);
        assert_eq!(got.coo.i1, want.coo.i1);
        assert_eq!(got.coo.i2, want.coo.i2);
    }

    #[test]
    fn fallback_path_for_large_block_counts() {
        let t = tensor(2, 200, 1 << 10);
        // block_bits 1 over a 10-bit extent => 27 bits of blocks: fallback.
        let got = hicoo_morton_sort3(&t, 1);
        got.validate().unwrap();
    }

    #[test]
    fn empty_tensor() {
        let t = Coo3Tensor::from_coords((4, 4, 4), vec![], vec![], vec![], vec![]).unwrap();
        let got = hicoo_morton_sort3(&t, 2);
        assert_eq!(got.nnz(), 0);
    }
}
