//! Figure-2 comparator models: TACO, SPARSKIT, and Intel MKL conversion
//! routines, transcribed as loop-AST programs for the shared interpreter
//! (see [`crate::vm`]).
//!
//! Each model follows the library's documented algorithmic structure:
//!
//! * **TACO** (PLDI'20 conversion routines): a coordinate sort (TACO's
//!   converters make no sortedness assumption) followed by attribute-query
//!   and assembly passes — count, prefix-sum, scatter. For DIA, TACO
//!   builds a diagonal flag/compaction map and scatters *directly* (no
//!   per-element search), which is why it beats the synthesized linear /
//!   binary search (Figures 2d and 3).
//! * **SPARSKIT** (`coocsr`, `csrcsc`, `csrdia`): classic Fortran
//!   multi-pass transposition with cursor arrays and a trailing pointer
//!   shift; `csrdia` scans every (diagonal × row) pair, which degrades
//!   with the diagonal count.
//! * **Intel MKL**: modelled as the TACO-style algorithm plus a full
//!   export copy (handle-based conversions materialize a fresh copy).

use sparse_formats::{CooMatrix, CscMatrix, CsrMatrix, DiaMatrix};
use spf_codegen::ast::{CmpOp, Expr, Stmt};
use spf_codegen::interp::{ExecError, ExecStats};
use spf_codegen::runtime::{ListOrder, RtEnv};

use crate::vm::{alloc, c, copy, dalloc, guard, incr, rd, sym, wr, RoutineBuilder, VmRoutine};

/// Which library a routine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Library {
    /// TACO's generated conversion routines.
    Taco,
    /// SPARSKIT's hand-written Fortran kit.
    Sparskit,
    /// Intel MKL's handle-based converters.
    Mkl,
}

impl Library {
    /// All modelled libraries.
    pub const ALL: [Library; 3] = [Library::Taco, Library::Sparskit, Library::Mkl];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Library::Taco => "TACO",
            Library::Sparskit => "SPARSKIT",
            Library::Mkl => "MKL",
        }
    }
}

/// Count pass + exclusive prefix sum into `ptr` (size bound by `n` rows),
/// keyed by `key_uf[n]`.
fn count_and_prefix(b: &mut RoutineBuilder, ptr: &str, rows_sym: &str, key_uf: &str) {
    b.push(alloc(ptr, Expr::add(sym(rows_sym), c(1)), 0));
    b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
        vec![incr(ptr, Expr::add(rd(key_uf, n), c(1)))]
    });
    b.for_loop("e", c(0), sym(rows_sym), |_b, e| {
        vec![wr(
            ptr,
            Expr::add(e.clone(), c(1)),
            Expr::add(rd(ptr, Expr::add(e.clone(), c(1))), rd(ptr, e)),
        )]
    });
}

/// TACO's attribute-query phase (PLDI'20): before assembling, the
/// generated converters analyze the tensor's structural statistics —
/// coordinate extents and population counts per dimension.
fn attribute_query_pass(b: &mut RoutineBuilder, k0: &str, k1: &str) {
    b.push(alloc("stats", c(4), 0));
    let k0 = k0.to_string();
    let k1 = k1.to_string();
    b.for_loop("nq", c(0), sym("NNZ"), |_b, n| {
        vec![
            Stmt::UfMax { uf: "stats".into(), idx: c(0), value: rd(&k0, n.clone()) },
            Stmt::UfMax { uf: "stats".into(), idx: c(1), value: rd(&k1, n.clone()) },
            incr("stats", c(2)),
        ]
    });
}

/// The sort phase shared by TACO/MKL models: insert `(k0, k1)` per
/// nonzero into a lexicographic list named `S`.
fn sort_pass(b: &mut RoutineBuilder, k0: &str, k1: &str) {
    b.list("S", 2, ListOrder::Lexicographic, false);
    b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
        vec![Stmt::ListInsert {
            list: "S".into(),
            args: vec![rd(k0, n.clone()), rd(k1, n)],
        }]
    });
    b.push(Stmt::ListFinalize { list: "S".into() });
}

/// COO → CSR.
pub fn coo_to_csr(lib: Library) -> VmRoutine {
    let mut b = RoutineBuilder::new();
    match lib {
        Library::Taco | Library::Mkl => {
            attribute_query_pass(&mut b, "row", "col");
            sort_pass(&mut b, "row", "col");
            count_and_prefix(&mut b, "rowptr", "NR", "row");
            b.push(alloc("outcol", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            let (pslot, pexpr) = b.fresh("p");
            b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
                vec![
                    Stmt::Let {
                        var: "p".into(),
                        slot: pslot,
                        value: Expr::ListRank {
                            list: "S".into(),
                            args: vec![rd("row", n.clone()), rd("col", n.clone())],
                        },
                    },
                    wr("outcol", pexpr.clone(), rd("col", n.clone())),
                    copy("Aout", pexpr.clone(), "Acoo", n),
                ]
            });
            if lib == Library::Mkl {
                export_copy(&mut b, "outcol", "Aout", sym("NNZ"));
            }
        }
        Library::Sparskit => {
            count_and_prefix(&mut b, "rowptr", "NR", "row");
            // Cursor copy pass.
            b.push(alloc("cursor", Expr::add(sym("NR"), c(1)), 0));
            b.for_loop("e", c(0), Expr::add(sym("NR"), c(1)), |_b, e| {
                vec![wr("cursor", e.clone(), rd("rowptr", e))]
            });
            b.push(alloc("outcol", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
                vec![
                    wr("outcol", rd("cursor", rd("row", n.clone())), rd("col", n.clone())),
                    copy("Aout", rd("cursor", rd("row", n.clone())), "Acoo", n.clone()),
                    incr("cursor", rd("row", n)),
                ]
            });
            // The Fortran pointer-shift fixup pass.
            b.for_loop("e", c(0), Expr::add(sym("NR"), c(1)), |_b, e| {
                vec![wr("rowptr", e.clone(), rd("rowptr", e))]
            });
        }
    }
    b.build()
}

/// COO → CSC (mirror of [`coo_to_csr`] keyed by columns).
pub fn coo_to_csc(lib: Library) -> VmRoutine {
    let mut b = RoutineBuilder::new();
    match lib {
        Library::Taco | Library::Mkl => {
            attribute_query_pass(&mut b, "col", "row");
            sort_pass(&mut b, "col", "row");
            count_and_prefix(&mut b, "colptr", "NC", "col");
            b.push(alloc("outrow", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            let (pslot, pexpr) = b.fresh("p");
            b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
                vec![
                    Stmt::Let {
                        var: "p".into(),
                        slot: pslot,
                        value: Expr::ListRank {
                            list: "S".into(),
                            args: vec![rd("col", n.clone()), rd("row", n.clone())],
                        },
                    },
                    wr("outrow", pexpr.clone(), rd("row", n.clone())),
                    copy("Aout", pexpr.clone(), "Acoo", n),
                ]
            });
            if lib == Library::Mkl {
                export_copy(&mut b, "outrow", "Aout", sym("NNZ"));
            }
        }
        Library::Sparskit => {
            count_and_prefix(&mut b, "colptr", "NC", "col");
            b.push(alloc("cursor", Expr::add(sym("NC"), c(1)), 0));
            b.for_loop("e", c(0), Expr::add(sym("NC"), c(1)), |_b, e| {
                vec![wr("cursor", e.clone(), rd("colptr", e))]
            });
            b.push(alloc("outrow", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
                vec![
                    wr("outrow", rd("cursor", rd("col", n.clone())), rd("row", n.clone())),
                    copy("Aout", rd("cursor", rd("col", n.clone())), "Acoo", n.clone()),
                    incr("cursor", rd("col", n)),
                ]
            });
            b.for_loop("e", c(0), Expr::add(sym("NC"), c(1)), |_b, e| {
                vec![wr("colptr", e.clone(), rd("colptr", e))]
            });
        }
    }
    b.build()
}

/// CSR → CSC.
pub fn csr_to_csc(lib: Library) -> VmRoutine {
    let mut b = RoutineBuilder::new();
    // Column count pass from CSR structure.
    b.push(alloc("colptr", Expr::add(sym("NC"), c(1)), 0));
    let (islot, iexpr) = b.fresh("i");
    let (kslot, kexpr) = b.fresh("k");
    let count_body = vec![Stmt::For {
        var: "k".into(),
        slot: kslot,
        lo: rd("rowptr", iexpr.clone()),
        hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
        body: vec![incr("colptr", Expr::add(rd("col2", kexpr.clone()), c(1)))],
    }];
    b.push(Stmt::For {
        var: "i".into(),
        slot: islot,
        lo: c(0),
        hi: sym("NR"),
        body: count_body,
    });
    b.for_loop("e", c(0), sym("NC"), |_b, e| {
        vec![wr(
            "colptr",
            Expr::add(e.clone(), c(1)),
            Expr::add(rd("colptr", Expr::add(e.clone(), c(1))), rd("colptr", e)),
        )]
    });
    match lib {
        Library::Taco | Library::Mkl => {
            // Attribute queries over the CSR coordinates.
            b.push(alloc("stats", c(4), 0));
            {
                let (islot, iexpr) = b.fresh("iq");
                let (kslot, kexpr) = b.fresh("kq");
                b.push(Stmt::For {
                    var: "iq".into(),
                    slot: islot,
                    lo: c(0),
                    hi: sym("NR"),
                    body: vec![Stmt::For {
                        var: "kq".into(),
                        slot: kslot,
                        lo: rd("rowptr", iexpr.clone()),
                        hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
                        body: vec![
                            Stmt::UfMax {
                                uf: "stats".into(),
                                idx: c(0),
                                value: rd("col2", kexpr.clone()),
                            },
                            incr("stats", c(2)),
                        ],
                    }],
                });
            }
            // Sort pass over (col, row) pairs gathered from CSR.
            b.list("S", 2, ListOrder::Lexicographic, false);
            let (islot, iexpr) = b.fresh("i2");
            let (kslot, kexpr) = b.fresh("k2");
            b.push(Stmt::For {
                var: "i2".into(),
                slot: islot,
                lo: c(0),
                hi: sym("NR"),
                body: vec![Stmt::For {
                    var: "k2".into(),
                    slot: kslot,
                    lo: rd("rowptr", iexpr.clone()),
                    hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
                    body: vec![Stmt::ListInsert {
                        list: "S".into(),
                        args: vec![rd("col2", kexpr.clone()), iexpr.clone()],
                    }],
                }],
            });
            b.push(Stmt::ListFinalize { list: "S".into() });
            b.push(alloc("outrow", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            let (islot, iexpr) = b.fresh("i3");
            let (kslot, kexpr) = b.fresh("k3");
            let (pslot, pexpr) = b.fresh("p");
            b.push(Stmt::For {
                var: "i3".into(),
                slot: islot,
                lo: c(0),
                hi: sym("NR"),
                body: vec![Stmt::For {
                    var: "k3".into(),
                    slot: kslot,
                    lo: rd("rowptr", iexpr.clone()),
                    hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
                    body: vec![
                        Stmt::Let {
                            var: "p".into(),
                            slot: pslot,
                            value: Expr::ListRank {
                                list: "S".into(),
                                args: vec![rd("col2", kexpr.clone()), iexpr.clone()],
                            },
                        },
                        wr("outrow", pexpr.clone(), iexpr.clone()),
                        copy("Aout", pexpr.clone(), "Acsr", kexpr.clone()),
                    ],
                }],
            });
            if lib == Library::Mkl {
                export_copy(&mut b, "outrow", "Aout", sym("NNZ"));
            }
        }
        Library::Sparskit => {
            // Classic transpose with cursors: within-column order falls
            // out of the CSR row order.
            b.push(alloc("cursor", Expr::add(sym("NC"), c(1)), 0));
            b.for_loop("e", c(0), Expr::add(sym("NC"), c(1)), |_b, e| {
                vec![wr("cursor", e.clone(), rd("colptr", e))]
            });
            b.push(alloc("outrow", sym("NNZ"), 0));
            b.push(dalloc("Aout", sym("NNZ")));
            let (islot, iexpr) = b.fresh("i4");
            let (kslot, kexpr) = b.fresh("k4");
            b.push(Stmt::For {
                var: "i4".into(),
                slot: islot,
                lo: c(0),
                hi: sym("NR"),
                body: vec![Stmt::For {
                    var: "k4".into(),
                    slot: kslot,
                    lo: rd("rowptr", iexpr.clone()),
                    hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
                    body: vec![
                        wr(
                            "outrow",
                            rd("cursor", rd("col2", kexpr.clone())),
                            iexpr.clone(),
                        ),
                        copy(
                            "Aout",
                            rd("cursor", rd("col2", kexpr.clone())),
                            "Acsr",
                            kexpr.clone(),
                        ),
                        incr("cursor", rd("col2", kexpr.clone())),
                    ],
                }],
            });
            b.for_loop("e", c(0), Expr::add(sym("NC"), c(1)), |_b, e| {
                vec![wr("colptr", e.clone(), rd("colptr", e))]
            });
        }
    }
    b.build()
}

/// COO → DIA.
pub fn coo_to_dia(lib: Library) -> VmRoutine {
    let mut b = RoutineBuilder::new();
    let nd_span = Expr::sub(Expr::add(sym("NR"), sym("NC")), c(1));
    // Diagonal flag pass (all libraries discover the populated diagonals).
    b.push(alloc("flag", nd_span.clone(), 0));
    b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
        vec![wr(
            "flag",
            Expr::add(
                Expr::sub(rd("col", n.clone()), rd("row", n)),
                Expr::sub(sym("NR"), c(1)),
            ),
            c(1),
        )]
    });
    // Compaction: off[] and the diagonal map.
    b.push(alloc("cnt", c(1), 0));
    b.push(alloc("off", nd_span.clone(), 0));
    b.push(alloc("dmap", nd_span.clone(), -1));
    b.for_loop("e", c(0), nd_span.clone(), |_b, e| {
        vec![guard(
            rd("flag", e.clone()),
            CmpOp::Eq,
            c(1),
            vec![
                wr(
                    "off",
                    rd("cnt", c(0)),
                    Expr::sub(e.clone(), Expr::sub(sym("NR"), c(1))),
                ),
                wr("dmap", e.clone(), rd("cnt", c(0))),
                incr("cnt", c(0)),
            ],
        )]
    });
    b.push(Stmt::SymSet { sym: "ND".into(), value: rd("cnt", c(0)) });
    b.push(dalloc("Aout", Expr::mul(sym("ND"), sym("NR"))));
    match lib {
        Library::Taco => {
            // Direct scatter through the diagonal map — no search. This
            // is why TACO wins the DIA comparison in the paper.
            b.for_loop("n", c(0), sym("NNZ"), |_b, n| {
                let d = rd(
                    "dmap",
                    Expr::add(
                        Expr::sub(rd("col", n.clone()), rd("row", n.clone())),
                        Expr::sub(sym("NR"), c(1)),
                    ),
                );
                vec![copy(
                    "Aout",
                    Expr::add(Expr::mul(rd("row", n.clone()), sym("ND")), d),
                    "Acoo",
                    n,
                )]
            });
        }
        Library::Sparskit | Library::Mkl => {
            // csrdia-style: first build CSR cursors, then scan every
            // (diagonal, row) pair and search the row — the dense
            // diagonal-layout walk that degrades with the diagonal count.
            // MKL's handle-based converter goes through the same dense
            // layout and additionally export-copies the ND*NR block,
            // which is why the paper's Fig. 3 binary search beats both.
            count_and_prefix(&mut b, "rowptr", "NR", "row");
            b.push(alloc("cursor", Expr::add(sym("NR"), c(1)), 0));
            b.for_loop("e2", c(0), Expr::add(sym("NR"), c(1)), |_b, e| {
                vec![wr("cursor", e.clone(), rd("rowptr", e))]
            });
            b.push(alloc("csrcol", sym("NNZ"), 0));
            b.push(dalloc("Acsrtmp", sym("NNZ")));
            b.for_loop("n2", c(0), sym("NNZ"), |_b, n| {
                vec![
                    wr("csrcol", rd("cursor", rd("row", n.clone())), rd("col", n.clone())),
                    copy("Acsrtmp", rd("cursor", rd("row", n.clone())), "Acoo", n.clone()),
                    incr("cursor", rd("row", n)),
                ]
            });
            // Per-diagonal dense scan with an inner row search.
            let (dslot, dexpr) = b.fresh("d");
            let (islot, iexpr) = b.fresh("i");
            let (kslot, kexpr) = b.fresh("k");
            b.push(Stmt::For {
                var: "d".into(),
                slot: dslot,
                lo: c(0),
                hi: sym("ND"),
                body: vec![Stmt::For {
                    var: "i".into(),
                    slot: islot,
                    lo: c(0),
                    hi: sym("NR"),
                    body: vec![Stmt::For {
                        var: "k".into(),
                        slot: kslot,
                        lo: rd("rowptr", iexpr.clone()),
                        hi: rd("rowptr", Expr::add(iexpr.clone(), c(1))),
                        body: vec![guard(
                            rd("csrcol", kexpr.clone()),
                            CmpOp::Eq,
                            Expr::add(iexpr.clone(), rd("off", dexpr.clone())),
                            vec![copy(
                                "Aout",
                                Expr::add(
                                    Expr::mul(iexpr.clone(), sym("ND")),
                                    dexpr.clone(),
                                ),
                                "Acsrtmp",
                                kexpr.clone(),
                            )],
                        )],
                    }],
                }],
            });
            if lib == Library::Mkl {
                // Handle export: copy the dense ND*NR block out and back.
                b.push(dalloc("Aout2", Expr::mul(sym("ND"), sym("NR"))));
                b.for_loop("q", c(0), Expr::mul(sym("ND"), sym("NR")), |_b, q| {
                    vec![copy("Aout2", q.clone(), "Aout", q)]
                });
                b.for_loop("q2", c(0), Expr::mul(sym("ND"), sym("NR")), |_b, q| {
                    vec![copy("Aout", q.clone(), "Aout2", q)]
                });
            }
        }
    }
    b.build()
}

/// MKL's handle-export pass: one more full copy of the output arrays.
fn export_copy(b: &mut RoutineBuilder, idx_arr: &str, data_arr: &str, len: Expr) {
    b.push(alloc("exp_idx", len.clone(), 0));
    b.push(dalloc("exp_data", len.clone()));
    let idx_arr = idx_arr.to_string();
    let data_arr = data_arr.to_string();
    b.for_loop("q", c(0), len.clone(), |_b, q| {
        vec![
            wr("exp_idx", q.clone(), rd(&idx_arr, q.clone())),
            copy("exp_data", q.clone(), &data_arr, q),
        ]
    });
    b.for_loop("q2", c(0), len, |_b, q| {
        vec![
            wr(&idx_arr, q.clone(), rd("exp_idx", q.clone())),
            copy(&data_arr, q.clone(), "exp_data", q),
        ]
    });
}

// ---------------------------------------------------------------------
// Runners: bind containers, execute, extract.
// ---------------------------------------------------------------------

fn coo_env<'a>(m: &'a CooMatrix) -> RtEnv<'a> {
    RtEnv::new()
        .with_sym("NR", m.nr as i64)
        .with_sym("NC", m.nc as i64)
        .with_sym("NNZ", m.nnz() as i64)
        .with_uf("row", m.row.clone())
        .with_uf("col", m.col.clone())
        .with_data("Acoo", m.val.clone())
}

fn csr_env<'a>(m: &'a CsrMatrix) -> RtEnv<'a> {
    RtEnv::new()
        .with_sym("NR", m.nr as i64)
        .with_sym("NC", m.nc as i64)
        .with_sym("NNZ", m.nnz() as i64)
        .with_uf("rowptr", m.rowptr.clone())
        .with_uf("col2", m.col.clone())
        .with_data("Acsr", m.val.clone())
}

/// Runs a COO→CSR baseline.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_coo_to_csr(
    routine: &VmRoutine,
    m: &CooMatrix,
) -> Result<(CsrMatrix, ExecStats), ExecError> {
    let mut env = coo_env(m);
    let stats = routine.execute(&mut env)?;
    Ok((
        CsrMatrix {
            nr: m.nr,
            nc: m.nc,
            rowptr: env.ufs["rowptr"].to_vec(),
            col: env.ufs["outcol"].to_vec(),
            val: env.data["Aout"].to_vec(),
        },
        stats,
    ))
}

/// Runs a COO→CSC baseline.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_coo_to_csc(
    routine: &VmRoutine,
    m: &CooMatrix,
) -> Result<(CscMatrix, ExecStats), ExecError> {
    let mut env = coo_env(m);
    let stats = routine.execute(&mut env)?;
    Ok((
        CscMatrix {
            nr: m.nr,
            nc: m.nc,
            colptr: env.ufs["colptr"].to_vec(),
            row: env.ufs["outrow"].to_vec(),
            val: env.data["Aout"].to_vec(),
        },
        stats,
    ))
}

/// Runs a CSR→CSC baseline.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_csr_to_csc(
    routine: &VmRoutine,
    m: &CsrMatrix,
) -> Result<(CscMatrix, ExecStats), ExecError> {
    let mut env = csr_env(m);
    let stats = routine.execute(&mut env)?;
    Ok((
        CscMatrix {
            nr: m.nr,
            nc: m.nc,
            colptr: env.ufs["colptr"].to_vec(),
            row: env.ufs["outrow"].to_vec(),
            val: env.data["Aout"].to_vec(),
        },
        stats,
    ))
}

/// Runs a COO→DIA baseline.
///
/// # Errors
/// Propagates interpreter errors.
pub fn run_coo_to_dia(
    routine: &VmRoutine,
    m: &CooMatrix,
) -> Result<(DiaMatrix, ExecStats), ExecError> {
    let mut env = coo_env(m);
    let stats = routine.execute(&mut env)?;
    let nd = env.syms["ND"] as usize;
    Ok((
        DiaMatrix {
            nr: m.nr,
            nc: m.nc,
            off: env.ufs["off"][..nd].to_vec(),
            data: env.data["Aout"].to_vec(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sorted: bool) -> CooMatrix {
        let mut m = CooMatrix::from_triplets(
            4,
            5,
            vec![2, 0, 3, 0, 1, 2],
            vec![1, 4, 0, 2, 3, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        if sorted {
            m.sort_row_major();
        }
        m
    }

    #[test]
    fn all_libraries_coo_to_csr_match_oracle() {
        let coo = sample(true);
        let want = CsrMatrix::from_coo(&coo);
        for lib in Library::ALL {
            let routine = coo_to_csr(lib);
            let (got, _) = run_coo_to_csr(&routine, &coo).unwrap();
            assert_eq!(got, want, "{}", lib.name());
            got.validate().unwrap();
        }
    }

    #[test]
    fn sparskit_coo_to_csr_requires_sorted_input_for_sorted_rows() {
        // SPARSKIT preserves within-row input order; with sorted input
        // the output is valid CSR.
        let coo = sample(true);
        let (got, _) = run_coo_to_csr(&coo_to_csr(Library::Sparskit), &coo).unwrap();
        got.validate().unwrap();
    }

    #[test]
    fn all_libraries_coo_to_csc_match_oracle() {
        let coo = sample(true);
        let want = CscMatrix::from_coo(&coo);
        for lib in Library::ALL {
            let (got, _) = run_coo_to_csc(&coo_to_csc(lib), &coo).unwrap();
            assert_eq!(got, want, "{}", lib.name());
        }
    }

    #[test]
    fn all_libraries_csr_to_csc_match_oracle() {
        let csr = CsrMatrix::from_coo(&sample(true));
        let want = CscMatrix::from_csr(&csr);
        for lib in Library::ALL {
            let (got, _) = run_csr_to_csc(&csr_to_csc(lib), &csr).unwrap();
            assert_eq!(got, want, "{}", lib.name());
        }
    }

    #[test]
    fn all_libraries_coo_to_dia_match_oracle() {
        let coo = sample(true);
        let want = DiaMatrix::from_coo(&coo);
        for lib in Library::ALL {
            let (got, _) = run_coo_to_dia(&coo_to_dia(lib), &coo).unwrap();
            assert_eq!(got, want, "{}", lib.name());
            got.validate().unwrap();
        }
    }

    #[test]
    fn sparskit_dia_does_more_work_with_more_diagonals() {
        // The csrdia-style scan is O(ND * NNZ-ish); confirm iteration
        // counts grow with ND while TACO's direct scatter stays flat.
        let narrow = {
            let mut m = CooMatrix::from_triplets(
                20,
                20,
                (0..20).map(|i| i as i64).collect(),
                (0..20).map(|i| i as i64).collect(),
                vec![1.0; 20],
            )
            .unwrap();
            m.sort_row_major();
            m
        };
        let wide = {
            // Same NNZ spread over many diagonals.
            let mut row = Vec::new();
            let mut col = Vec::new();
            for k in 0..20i64 {
                row.push(0.max(k - 10));
                col.push(k.min(19));
            }
            let mut m = CooMatrix::from_triplets(20, 20, row, col, vec![1.0; 20]).unwrap();
            m.sort_row_major();
            m
        };
        let routine = coo_to_dia(Library::Sparskit);
        let (_, s_narrow) = run_coo_to_dia(&routine, &narrow).unwrap();
        let (_, s_wide) = run_coo_to_dia(&routine, &wide).unwrap();
        assert!(s_wide.loop_iterations > s_narrow.loop_iterations);
        let taco = coo_to_dia(Library::Taco);
        let (_, t_narrow) = run_coo_to_dia(&taco, &narrow).unwrap();
        let (_, t_wide) = run_coo_to_dia(&taco, &wide).unwrap();
        // TACO's scatter is search-free: growth only from the flag
        // compaction pass, far below SPARSKIT's.
        let sparskit_growth = s_wide.loop_iterations as f64 / s_narrow.loop_iterations as f64;
        let taco_growth = t_wide.loop_iterations as f64 / t_narrow.loop_iterations as f64;
        assert!(sparskit_growth > taco_growth);
    }
}
