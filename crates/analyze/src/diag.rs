//! Rustc-style diagnostics for the static plan verifier.
//!
//! Every finding carries a stable code (`SA001`..), a severity, a short
//! message, and optional rendered source relations (the constraint system
//! or statement the finding is about), so drivers can print something a
//! human can act on and tests can assert on specific codes.

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings make a plan unverifiable: the engine refuses to cache
/// such plans under `verify_plans`, and `lint_descriptor` exits nonzero.
/// `Warning` marks accesses the prover could not discharge (incompleteness
/// is expected: the refutation engine is sound but not complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational context (never gates anything).
    Note,
    /// Unproven but not demonstrably wrong.
    Warning,
    /// Demonstrated violation of a declared property.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes emitted by the four verifier passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Statement reads a name before any statement defines it.
    Sa001,
    /// Destination UF is never populated, or its initializing allocation
    /// does not cover the declared domain.
    Sa002,
    /// UF-call argument not provably inside the declared domain.
    Sa003,
    /// Written value not provably inside the declared range.
    Sa004,
    /// Data access not provably inside the allocated bounds.
    Sa005,
    /// Declared monotonic quantifier is not established by the plan (or a
    /// pointer-style UF lacks the monotonicity declaration it needs).
    Sa006,
    /// Destination order key is not established by the synthesized
    /// permutation chain.
    Sa007,
    /// Loop-carried dependence forces sequential execution (informational).
    Sa008,
    /// UF used without a registered signature.
    Sa009,
}

impl Code {
    /// The canonical `SAnnn` string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Sa001 => "SA001",
            Code::Sa002 => "SA002",
            Code::Sa003 => "SA003",
            Code::Sa004 => "SA004",
            Code::Sa005 => "SA005",
            Code::Sa006 => "SA006",
            Code::Sa007 => "SA007",
            Code::Sa008 => "SA008",
            Code::Sa009 => "SA009",
        }
    }

    /// Default severity for findings with this code.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::Sa001 | Code::Sa002 | Code::Sa006 | Code::Sa007 => Severity::Error,
            Code::Sa003 | Code::Sa004 | Code::Sa005 => Severity::Warning,
            Code::Sa008 | Code::Sa009 => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually `code.default_severity()`).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Label of the statement the finding is about, if any.
    pub stmt: Option<String>,
    /// Rendered source relations or constraints backing the finding.
    pub relations: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            stmt: None,
            relations: Vec::new(),
        }
    }

    /// Attaches the statement label the finding refers to.
    pub fn with_stmt(mut self, label: impl Into<String>) -> Self {
        self.stmt = Some(label.into());
        self
    }

    /// Attaches a rendered source relation (constraint system, set, ...).
    pub fn with_relation(mut self, rel: impl Into<String>) -> Self {
        self.relations.push(rel.into());
        self
    }

    /// Renders the finding in rustc style:
    ///
    /// ```text
    /// error[SA006]: rowptr participates in loop bounds but ...
    ///   --> stmt `populate rowptr`
    ///    = relation: { [i,k,j] : ... }
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(stmt) = &self.stmt {
            out.push_str(&format!("\n  --> stmt `{stmt}`"));
        }
        for rel in &self.relations {
            out.push_str(&format!("\n   = relation: {rel}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Sa001.as_str(), "SA001");
        assert_eq!(Code::Sa009.to_string(), "SA009");
    }

    #[test]
    fn default_severities() {
        assert_eq!(Code::Sa001.default_severity(), Severity::Error);
        assert_eq!(Code::Sa003.default_severity(), Severity::Warning);
        assert_eq!(Code::Sa008.default_severity(), Severity::Note);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn render_is_rustc_style() {
        let d = Diagnostic::new(Code::Sa006, "rowptr monotonicity not established")
            .with_stmt("populate rowptr")
            .with_relation("{ [i] : 0 <= i < NR }");
        let r = d.render();
        assert!(r.starts_with("error[SA006]: rowptr"));
        assert!(r.contains("--> stmt `populate rowptr`"));
        assert!(r.contains("= relation: { [i]"));
    }
}
