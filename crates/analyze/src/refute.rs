//! A sound (incomplete) refutation engine for conjunctions of integer
//! linear constraints over opaque atoms.
//!
//! The verifier's proof obligations all reduce to "this constraint system
//! is unsatisfiable": subset checks (`S ⊨ g` iff `S ∧ ¬g` is UNSAT) and
//! dependence tests (no conflict iff the intersection system is UNSAT).
//! We prove UNSAT by *saturation*: starting from the system, we repeatedly
//! derive consequences — equality rewrites, Fourier–Motzkin resolvents on
//! unit-coefficient atoms — until a constraint normalizes to a
//! contradiction (e.g. `-1 >= 0`) or a budget is exhausted.
//!
//! Soundness comes from only ever *adding* valid consequences: every atom
//! (tuple variable, symbolic constant, UF call, product) is treated as a
//! free integer unknown, which over-approximates the true models, so any
//! contradiction we find holds for the real semantics too. Completeness is
//! explicitly not a goal; unproven obligations surface as warnings.
//!
//! Uninterpreted functions are handled by *enrichment* before saturation:
//!
//! * **range facts** — for each UF call `f(e)` whose signature declares a
//!   range set, the range constraints are instantiated at the call
//!   (e.g. `0 <= rowptr(i) <= NNZ`);
//! * **congruence** — `a = b` provable implies `f(a) = f(b)`;
//! * **monotonicity** — for declared non-decreasing/increasing UFs, a
//!   provable argument order `a <= b` yields `f(a) <= f(b)` (and
//!   `f(b) - f(a) >= b - a` for strictly increasing UFs), which is what
//!   lets CSR-style `rowptr(i) <= k < rowptr(i+1)` windows chain across
//!   iterations.

use std::collections::HashSet;

use spf_ir::constraint::Normalized;
use spf_ir::{Atom, Constraint, LinExpr, Monotonicity, UfCall, UfEnvironment};

/// Saturation budget: maximum derivation rounds for a top-level proof.
const MAX_ROUNDS: usize = 8;
/// Saturation budget: maximum retained constraints for a top-level proof.
const MAX_CONSTRAINTS: usize = 900;
/// Reduced budgets for the auxiliary argument-order proofs that feed
/// monotonicity/congruence enrichment (pure affine goals; keep them cheap).
const AUX_ROUNDS: usize = 4;
const AUX_CONSTRAINTS: usize = 250;

/// The prover: a set of UF environments consulted for enrichment.
#[derive(Default)]
pub struct Prover<'a> {
    envs: Vec<&'a UfEnvironment>,
}

impl<'a> Prover<'a> {
    /// A prover with no UF knowledge (pure linear reasoning).
    pub fn new() -> Self {
        Prover { envs: Vec::new() }
    }

    /// Registers a UF environment; earlier environments win on collision.
    pub fn add_env(&mut self, env: &'a UfEnvironment) -> &mut Self {
        self.envs.push(env);
        self
    }

    fn lookup(&self, name: &str) -> Option<&'a spf_ir::UfSignature> {
        self.envs.iter().find_map(|e| e.get(name))
    }

    /// Returns `true` iff the conjunction is *proved* unsatisfiable over
    /// the integers (treating atoms as free unknowns, plus UF enrichment).
    pub fn refutes(&self, system: &[Constraint]) -> bool {
        let mut sys = system.to_vec();
        self.enrich(&mut sys);
        saturate(sys, MAX_ROUNDS, MAX_CONSTRAINTS)
    }

    /// Returns `true` iff `system ⊨ goal` is proved, by refuting the
    /// system conjoined with each disjunct of the goal's negation.
    pub fn entails(&self, system: &[Constraint], goal: &Constraint) -> bool {
        negation_branches(goal).into_iter().all(|neg| {
            let mut sys = system.to_vec();
            sys.push(neg);
            self.refutes(&sys)
        })
    }

    /// Adds UF-derived facts (range instantiation, congruence,
    /// monotonicity) to the system.
    fn enrich(&self, sys: &mut Vec<Constraint>) {
        let calls = collect_calls(sys);
        // Range facts.
        for call in &calls {
            let Some(sig) = self.lookup(&call.name) else { continue };
            if call.args.len() != sig.arity {
                continue;
            }
            let range = &sig.range;
            if range.arity() != 1 || range.conjunctions().len() != 1 {
                continue;
            }
            let conj = &range.conjunctions()[0];
            if !conj.exists().is_empty() {
                continue;
            }
            let value = LinExpr::uf(call.clone());
            for c in &conj.constraints {
                sys.push(c.map_vars(&mut |v| {
                    if v.0 == 0 {
                        value.clone()
                    } else {
                        LinExpr::var(v)
                    }
                }));
            }
        }
        // Congruence and monotonicity facts for same-name call pairs. The
        // argument-order side conditions are proved with the *unenriched*
        // base system (cheap pure-affine proofs, no recursion).
        let base: Vec<Constraint> = sys.clone();
        let list: Vec<&UfCall> = calls.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (a, b) = (list[i], list[j]);
                if a.name != b.name || a.args.len() != b.args.len() {
                    continue;
                }
                // Congruence: all argument pairs provably equal.
                let args_equal = a
                    .args
                    .iter()
                    .zip(&b.args)
                    .all(|(x, y)| prove_aux(&base, &Constraint::eq(x.clone(), y.clone())));
                if args_equal {
                    sys.push(Constraint::eq(
                        LinExpr::uf(a.clone()),
                        LinExpr::uf(b.clone()),
                    ));
                    continue;
                }
                // Monotonicity (unary UFs with a declared property only).
                let Some(mono) = self.lookup(&a.name).and_then(|s| s.monotonicity) else {
                    continue;
                };
                if a.args.len() != 1 {
                    continue;
                }
                let (xa, xb) = (&a.args[0], &b.args[0]);
                // Orient the pair: find a provable `lo.arg <= hi.arg`.
                let oriented = if prove_aux(&base, &Constraint::ge(xb.clone(), xa.clone())) {
                    Some((a, b))
                } else if prove_aux(&base, &Constraint::ge(xa.clone(), xb.clone())) {
                    Some((b, a))
                } else {
                    None
                };
                let Some((lo, hi)) = oriented else { continue };
                let flo = LinExpr::uf(lo.clone());
                let fhi = LinExpr::uf(hi.clone());
                match mono {
                    Monotonicity::NonDecreasing => {
                        sys.push(Constraint::ge(fhi, flo));
                    }
                    Monotonicity::Increasing => {
                        // hi.arg - lo.arg >= 0 implies
                        // f(hi) - f(lo) >= hi.arg - lo.arg for strictly
                        // increasing integer functions.
                        let darg = hi.args[0].sub(&lo.args[0]);
                        sys.push(Constraint::ge(fhi.sub(&flo), darg));
                    }
                }
            }
        }
    }
}

/// Proves a pure-affine side condition against the unenriched system.
fn prove_aux(base: &[Constraint], goal: &Constraint) -> bool {
    negation_branches(goal).into_iter().all(|neg| {
        let mut sys = base.to_vec();
        sys.push(neg);
        saturate(sys, AUX_ROUNDS, AUX_CONSTRAINTS)
    })
}

/// The disjuncts of `¬goal`, each to be refuted separately.
/// `¬(e >= 0)` is `-e - 1 >= 0`; `¬(e == 0)` is `e >= 1  ∨  -e >= 1`.
fn negation_branches(goal: &Constraint) -> Vec<Constraint> {
    match goal {
        Constraint::Geq(e) => {
            vec![Constraint::Geq(e.scaled(-1).add(&LinExpr::constant(-1)))]
        }
        Constraint::Eq(e) => vec![
            Constraint::Geq(e.add(&LinExpr::constant(-1))),
            Constraint::Geq(e.scaled(-1).add(&LinExpr::constant(-1))),
        ],
    }
}

/// Collects every UF call (at any nesting depth) mentioned by the system.
pub(crate) fn collect_calls(sys: &[Constraint]) -> Vec<UfCall> {
    let mut out = Vec::new();
    for c in sys {
        collect_calls_in_expr(c.expr(), &mut out);
    }
    out
}

/// Collects every UF call (at any nesting depth, innermost first)
/// mentioned by one expression, deduplicating against `out`.
pub(crate) fn collect_calls_in_expr(e: &LinExpr, out: &mut Vec<UfCall>) {
    fn walk_atom(a: &Atom, out: &mut Vec<UfCall>) {
        match a {
            Atom::Uf(u) => {
                for arg in &u.args {
                    collect_calls_in_expr(arg, out);
                }
                if !out.contains(u) {
                    out.push(u.clone());
                }
            }
            Atom::Prod(fs) => {
                for f in fs {
                    walk_atom(f, out);
                }
            }
            _ => {}
        }
    }
    for (_, a) in &e.terms {
        walk_atom(a, out);
    }
}

/// Replaces top-level occurrences of `atom` in `e` by `repl`.
fn subst_atom(e: &LinExpr, atom: &Atom, repl: &LinExpr) -> LinExpr {
    let mut out = LinExpr { constant: e.constant, terms: Vec::new() };
    let mut acc = LinExpr::zero();
    for (c, a) in &e.terms {
        if a == atom {
            acc.add_assign(&repl.scaled(*c));
        } else {
            out.terms.push((*c, a.clone()));
        }
    }
    out.add_assign(&acc);
    out
}

/// Derives consequences until contradiction or budget exhaustion.
/// Returns `true` iff a contradiction was derived (system is UNSAT).
fn saturate(mut sys: Vec<Constraint>, max_rounds: usize, max_constraints: usize) -> bool {
    if spf_ir::constraint::normalize_all(&mut sys).is_none() {
        return true;
    }
    let mut seen: HashSet<Constraint> = sys.iter().cloned().collect();
    for _ in 0..max_rounds {
        let mut fresh: Vec<Constraint> = Vec::new();

        // Equality rewriting: for `±a + rest == 0`, substitute
        // `a := ∓rest` into every other constraint mentioning `a`
        // top-level.
        for c in &sys {
            let Constraint::Eq(e) = c else { continue };
            for (coeff, atom) in &e.terms {
                if coeff.abs() != 1 {
                    continue;
                }
                let mut rest = e.clone();
                rest.terms.retain(|(_, a)| a != atom);
                let repl = rest.scaled(-coeff);
                for other in &sys {
                    if std::ptr::eq(other, c) || other.expr().coeff_of(atom) == 0 {
                        continue;
                    }
                    let rewritten = match other {
                        Constraint::Eq(oe) => Constraint::Eq(subst_atom(oe, atom, &repl)),
                        Constraint::Geq(oe) => Constraint::Geq(subst_atom(oe, atom, &repl)),
                    };
                    fresh.push(rewritten);
                }
            }
        }

        // Fourier–Motzkin resolvents on unit-coefficient atoms: a lower
        // bound (`+a` term) plus an upper bound (`-a` term) eliminates
        // `a` exactly.
        let geqs: Vec<&LinExpr> = sys
            .iter()
            .filter_map(|c| match c {
                Constraint::Geq(e) => Some(e),
                _ => None,
            })
            .collect();
        let mut atoms: Vec<&Atom> = Vec::new();
        for e in &geqs {
            for (_, a) in &e.terms {
                if !atoms.contains(&a) {
                    atoms.push(a);
                }
            }
        }
        for atom in atoms {
            let lowers: Vec<&&LinExpr> =
                geqs.iter().filter(|e| e.coeff_of(atom) == 1).collect();
            let uppers: Vec<&&LinExpr> =
                geqs.iter().filter(|e| e.coeff_of(atom) == -1).collect();
            for lo in &lowers {
                for up in &uppers {
                    fresh.push(Constraint::Geq(lo.add(up)));
                }
            }
        }

        // Normalize, contradiction-check, dedup, and extend.
        let mut added = false;
        for mut c in fresh {
            c.expr_mut().canonicalize();
            match c.normalize() {
                Normalized::Contradiction => return true,
                Normalized::Tautology => {}
                Normalized::Keep => {
                    if sys.len() < max_constraints && seen.insert(c.clone()) {
                        sys.push(c);
                        added = true;
                    }
                }
            }
        }
        if !added {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::{UfSignature, VarId};

    fn v(i: u32) -> LinExpr {
        LinExpr::var(VarId(i))
    }

    #[test]
    fn refutes_direct_contradiction() {
        // x >= 1 && x <= 0
        let sys = vec![
            Constraint::ge(v(0), LinExpr::constant(1)),
            Constraint::le(v(0), LinExpr::constant(0)),
        ];
        assert!(Prover::new().refutes(&sys));
    }

    #[test]
    fn does_not_refute_satisfiable() {
        let sys = vec![
            Constraint::ge(v(0), LinExpr::constant(0)),
            Constraint::lt(v(0), LinExpr::sym("N")),
        ];
        assert!(!Prover::new().refutes(&sys));
    }

    #[test]
    fn entails_transitive_bound() {
        // 0 <= x < y && y <= N  ⊨  x < N
        let sys = vec![
            Constraint::ge(v(0), LinExpr::zero()),
            Constraint::lt(v(0), v(1)),
            Constraint::le(v(1), LinExpr::sym("N")),
        ];
        let goal = Constraint::lt(v(0), LinExpr::sym("N"));
        assert!(Prover::new().entails(&sys, &goal));
        // but not x < N - 1
        let too_strong =
            Constraint::lt(v(0), LinExpr::sym("N").add(&LinExpr::constant(-1)));
        assert!(!Prover::new().entails(&sys, &too_strong));
    }

    #[test]
    fn equality_chains_resolve() {
        // p = n && p' = n' && n < n'  is consistent; adding p = p'
        // chains the equalities into n = n', refuting the strict order.
        let sys = vec![
            Constraint::eq(v(0), v(1)),
            Constraint::eq(v(2), v(3)),
            Constraint::lt(v(1), v(3)),
        ];
        assert!(!Prover::new().refutes(&sys));
        let mut contradictory = sys.clone();
        contradictory.push(Constraint::eq(v(0), v(2)));
        assert!(Prover::new().refutes(&contradictory));
    }

    #[test]
    fn range_enrichment_bounds_uf_values() {
        // i = row(n)  ⊨  0 <= i < NR, given range(row) = [0, NR).
        let mut env = UfEnvironment::new();
        env.insert(
            UfSignature::parse(
                "row",
                "{ [x] : 0 <= x < NNZ }",
                "{ [y] : 0 <= y < NR }",
                None,
            )
            .unwrap(),
        );
        let call = UfCall::new("row", vec![v(1)]);
        let sys = vec![Constraint::eq(v(0), LinExpr::uf(call))];
        let mut p = Prover::new();
        p.add_env(&env);
        assert!(p.entails(&sys, &Constraint::ge(v(0), LinExpr::zero())));
        assert!(p.entails(&sys, &Constraint::lt(v(0), LinExpr::sym("NR"))));
        assert!(!p.entails(&sys, &Constraint::lt(v(0), LinExpr::sym("NC"))));
    }

    #[test]
    fn monotonicity_chains_windows() {
        // CSR windows don't overlap across rows:
        // rowptr(i) <= k < rowptr(i+1), rowptr(i') <= k' < rowptr(i'+1),
        // i < i', k = k'  is UNSAT for non-decreasing rowptr.
        let mut env = UfEnvironment::new();
        env.insert(
            UfSignature::parse(
                "rowptr",
                "{ [x] : 0 <= x <= NR }",
                "{ [y] : 0 <= y <= NNZ }",
                Some(Monotonicity::NonDecreasing),
            )
            .unwrap(),
        );
        let rp = |arg: LinExpr| LinExpr::uf(UfCall::new("rowptr", vec![arg]));
        let one = LinExpr::constant(1);
        let sys = vec![
            Constraint::ge(v(1), rp(v(0))),
            Constraint::lt(v(1), rp(v(0).add(&one))),
            Constraint::ge(v(3), rp(v(2))),
            Constraint::lt(v(3), rp(v(2).add(&one))),
            Constraint::lt(v(0), v(2)),
            Constraint::eq(v(1), v(3)),
        ];
        let mut p = Prover::new();
        p.add_env(&env);
        assert!(p.refutes(&sys));
        // Without the row order the system is satisfiable.
        let consistent: Vec<Constraint> =
            sys.iter().take(4).cloned().chain([Constraint::eq(v(0), v(2))]).collect();
        assert!(!p.refutes(&consistent));
    }

    #[test]
    fn congruence_equates_calls() {
        // k = k'  ⊨  col(k) = col(k')
        let col = |arg: LinExpr| LinExpr::uf(UfCall::new("col", vec![arg]));
        let sys = vec![
            Constraint::eq(v(0), v(1)),
            Constraint::eq(v(2), col(v(0))),
            Constraint::eq(v(3), col(v(1))),
        ];
        assert!(Prover::new().entails(&sys, &Constraint::eq(v(2), v(3))));
    }

    #[test]
    fn increasing_is_strict() {
        // off strictly increasing, d < d'  ⊨  off(d) < off(d').
        let mut env = UfEnvironment::new();
        env.insert(
            UfSignature::parse(
                "off",
                "{ [x] : 0 <= x < ND }",
                "{ [o] : 0 - NR < o && o < NC }",
                Some(Monotonicity::Increasing),
            )
            .unwrap(),
        );
        let off = |arg: LinExpr| LinExpr::uf(UfCall::new("off", vec![arg]));
        let sys = vec![Constraint::lt(v(0), v(1))];
        let mut p = Prover::new();
        p.add_env(&env);
        assert!(p.entails(&sys, &Constraint::lt(off(v(0)), off(v(1)))));
    }
}
