//! Pass 1: UF def-before-use dataflow over the statement sequence.
//!
//! * **SA001** — a statement reads a name (UF, list, data array, symbol)
//!   that no earlier statement defines and that is not an *external*: the
//!   source format's UFs/data/symbols and the destination's dimension and
//!   nnz symbols are inputs, everything else must be produced by the plan.
//! * **SA002** — a destination UF is never populated at all, or is
//!   populated through an allocation whose size does not cover the
//!   declared domain (so some entries would keep their init value).

use std::collections::BTreeSet;

use sparse_formats::descriptors::domain_alloc_size;
use spf_computation::{Computation, Kernel};

use crate::diag::{Code, Diagnostic};
use crate::Ctx;

pub(crate) fn check(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    check_def_before_use(comp, cx, out);
    check_coverage(comp, cx, out);
}

/// Names that are inputs to the plan rather than produced by it.
fn externals(cx: &Ctx<'_>) -> BTreeSet<String> {
    let mut ext: BTreeSet<String> = cx.src.uf_names().into_iter().collect();
    ext.insert(cx.src.data_name.clone());
    ext.extend(cx.src.dim_syms.iter().cloned());
    ext.insert(cx.src.nnz_sym.clone());
    ext.extend(cx.src.extra_syms.iter().cloned());
    // Destination *dimension* symbols are inputs (the logical shape); its
    // extra symbols (ND, ELLW, ...) are derived and must be computed.
    ext.extend(cx.dst.dim_syms.iter().cloned());
    ext.insert(cx.dst.nnz_sym.clone());
    ext
}

fn check_def_before_use(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mut defined = externals(cx);
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for stmt in &comp.stmts {
        let mut reads = stmt.reads();
        // Min/max statements read-modify-write their own UF; `reads()`
        // omits the RMW read, so the allocation requirement is added here.
        if let Kernel::UfMin { uf, .. } | Kernel::UfMax { uf, .. } = &stmt.kernel {
            reads.insert(uf.clone());
        }
        for r in &reads {
            if !defined.contains(r) && reported.insert(r.clone()) {
                out.push(
                    Diagnostic::new(
                        Code::Sa001,
                        format!("`{r}` is read before any statement defines it"),
                    )
                    .with_stmt(&stmt.label),
                );
            }
        }
        defined.extend(stmt.writes());
    }
}

fn check_coverage(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for sig in cx.dst.ufs.iter() {
        let name = &sig.name;
        let mut has_writer = false;
        let mut list_materialized = false;
        let mut alloc_size = None;
        for stmt in &comp.stmts {
            match &stmt.kernel {
                Kernel::UfWrite { uf, .. }
                | Kernel::UfMin { uf, .. }
                | Kernel::UfMax { uf, .. }
                    if uf == name =>
                {
                    has_writer = true;
                }
                Kernel::ListToUf { uf, .. } if uf == name => {
                    has_writer = true;
                    // Materialization allocates exactly the list length,
                    // and the domain symbol is set from the same list.
                    list_materialized = true;
                }
                Kernel::UfAlloc { uf, size, .. } if uf == name => {
                    alloc_size = Some(size.clone());
                }
                _ => {}
            }
        }
        if !has_writer {
            out.push(Diagnostic::new(
                Code::Sa002,
                format!("destination UF `{name}` is never populated by the plan"),
            ));
            continue;
        }
        if list_materialized {
            continue;
        }
        let Some(want) = domain_alloc_size(sig) else {
            out.push(Diagnostic::new(
                Code::Sa002,
                format!("destination UF `{name}` has no derivable allocation size"),
            ));
            continue;
        };
        match alloc_size {
            None => out.push(Diagnostic::new(
                Code::Sa002,
                format!("destination UF `{name}` is populated but never allocated"),
            )),
            Some(size) if size != want => out.push(
                Diagnostic::new(
                    Code::Sa002,
                    format!(
                        "allocation of `{name}` has size {size} but its domain \
                         needs {want}; uncovered entries would keep their init value"
                    ),
                )
                .with_relation(format!("domain size {want}, allocated {size}")),
            ),
            Some(_) => {}
        }
    }

    // The destination data array must be allocated at the declared size
    // and then written.
    let data = &cx.dst.data_name;
    let mut written = false;
    let mut alloc_factors = None;
    for stmt in &comp.stmts {
        match &stmt.kernel {
            Kernel::Copy { dst, .. } if dst == data => written = true,
            Kernel::DataAxpy { y, .. } if y == data => written = true,
            Kernel::DataAlloc { arr, size_factors } if arr == data => {
                alloc_factors = Some(size_factors.clone());
            }
            _ => {}
        }
    }
    if !written {
        out.push(Diagnostic::new(
            Code::Sa002,
            format!("destination data array `{data}` is never written by the plan"),
        ));
    } else {
        match alloc_factors {
            None => out.push(Diagnostic::new(
                Code::Sa002,
                format!("destination data array `{data}` is written but never allocated"),
            )),
            Some(factors) if factors != cx.dst.data_size => out.push(Diagnostic::new(
                Code::Sa002,
                format!(
                    "allocation of `{data}` does not match the descriptor's \
                     declared data size"
                ),
            )),
            Some(_) => {}
        }
    }
}
