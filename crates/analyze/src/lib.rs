//! # sparse-analyze
//!
//! A static plan verifier and SPF-IR lint pass for the synthesized format
//! conversions produced by `sparse-synthesis`. Where the paper's pipeline
//! *trusts* the inspector it generates, this crate re-derives the safety
//! and ordering arguments from the plan itself, using only declared facts
//! (UF signatures: domain, range, monotonicity) and a sound refutation
//! engine over Presburger constraints with uninterpreted functions.
//!
//! Four passes run over a lowered [`Computation`]:
//!
//! 1. **Dataflow** ([`Code::Sa001`], [`Code::Sa002`], `dataflow`) — every
//!    name read by a statement must be defined earlier (by synthesis setup
//!    or a previous statement), and every destination UF must actually be
//!    populated by an allocation that covers its declared domain.
//! 2. **Bounds** ([`Code::Sa003`]–[`Code::Sa005`], `bounds`) — every UF
//!    call argument, written value, and data access must be provably
//!    inside the declared domain/range/allocation. Proofs go through
//!    [`refute::Prover`]; two-factor allocations (ELL's `ELLW*NR`, DIA's
//!    `ND*NR`) are discharged with a mixed-radix window decomposition.
//! 3. **Ordering** ([`Code::Sa006`], [`Code::Sa007`], `ordering`) — UFs
//!    that play a loop-bound ("window") role must declare monotonic
//!    quantifiers and the plan must enforce them (bound + sweep, or a
//!    sorted unique list); a destination order key must be established by
//!    the permutation chain or implied by the source order.
//! 4. **Dependence** ([`Code::Sa008`], `dependence`) — each loop nest is
//!    classified [`Parallelism::Parallel`] / [`Parallelism::Reduction`] /
//!    [`Parallelism::Sequential`] by refuting loop-carried conflicts on a
//!    doubled iteration system, which the engine's batch executor consults.
//!
//! [`lint_descriptor`] runs the descriptor-level subset of these checks on
//! a [`FormatDescriptor`] alone, with no plan required.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diag;
pub mod refute;

mod bounds;
mod dataflow;
mod dependence;
mod ordering;

use std::collections::BTreeSet;
use std::fmt;

use sparse_formats::FormatDescriptor;
use sparse_synthesis::SynthesizedConversion;
use spf_computation::{Computation, Kernel, Stmt};
use spf_ir::{Constraint, LinExpr, UfCall, UfEnvironment, UfSignature, VarId};

pub use diag::{Code, Diagnostic, Severity};
pub use refute::Prover;

/// Parallelism verdict for one lowered loop nest, ordered from best to
/// worst: a nest's verdict is the worst conflict found among its accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Parallelism {
    /// No loop-carried dependence: iterations may run in any order, in
    /// parallel.
    Parallel,
    /// Only commutative conflicts (min/min, max/max, accumulate, inserts
    /// into a sorted list): parallelizable with a reduction strategy.
    Reduction,
    /// A loop-carried flow/output dependence (or an unproven one): the
    /// nest must run in program order.
    Sequential,
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Parallel => write!(f, "parallel"),
            Parallelism::Reduction => write!(f, "reduction"),
            Parallelism::Sequential => write!(f, "sequential"),
        }
    }
}

/// Dependence verdict for one loop nest of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestReport {
    /// Label of the nest (the member statement labels joined with `" + "`).
    pub label: String,
    /// Indices into `Computation::stmts` of the fused member statements.
    pub stmt_indices: Vec<usize>,
    /// The classification.
    pub parallelism: Parallelism,
    /// Why: the surviving conflicts, or a note that none were found.
    pub reason: String,
}

/// The result of verifying one synthesized conversion plan.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// `"SRC -> DST"` for display.
    pub pair: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-nest dependence verdicts, in statement order.
    pub nests: Vec<NestReport>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// `true` when no error-severity finding was emitted (warnings and
    /// notes are allowed: the prover is incomplete by design).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when at least one loop nest was proved free of loop-carried
    /// dependences. The engine's batch executor uses this as its license
    /// to fan conversions out across worker threads.
    pub fn has_parallel_loop(&self) -> bool {
        self.nests.iter().any(|n| n.parallelism == Parallelism::Parallel)
    }

    /// Renders the report: a header, every diagnostic in rustc style, and
    /// one line per loop nest with its verdict.
    pub fn render(&self) -> String {
        let mut out = format!(
            "verification of {}: {} error(s), {} warning(s)\n",
            self.pair,
            self.error_count(),
            self.warning_count()
        );
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        for n in &self.nests {
            out.push_str(&format!("nest `{}`: {} ({})\n", n.label, n.parallelism, n.reason));
        }
        out
    }

    /// Renders only the error-severity findings (used in engine failure
    /// messages, where warnings would drown the cause).
    pub fn render_errors(&self) -> String {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Verifies a synthesized conversion: descriptor lints on both endpoints
/// plus the four plan passes over the (optimized) computation.
pub fn verify(conv: &SynthesizedConversion) -> AnalysisReport {
    verify_computation(&conv.computation, &conv.src, &conv.dst, &conv.synth_ufs)
}

/// Verifies an arbitrary computation against a source/destination
/// descriptor pair, with `synth_ufs` holding signatures of UFs introduced
/// by synthesis itself (the permutation `P`). Exposed separately so tests
/// can verify the *naive* computation of a conversion too.
pub fn verify_computation(
    comp: &Computation,
    src: &FormatDescriptor,
    dst: &FormatDescriptor,
    synth_ufs: &UfEnvironment,
) -> AnalysisReport {
    let cx = Ctx::new(src, dst, synth_ufs);
    let mut diagnostics = Vec::new();
    diagnostics.extend(lint_descriptor(src));
    diagnostics.extend(lint_descriptor(dst));
    dataflow::check(comp, &cx, &mut diagnostics);
    bounds::check(comp, &cx, &mut diagnostics);
    ordering::check(comp, &cx, &mut diagnostics);
    let nests = dependence::classify(comp, &cx, &mut diagnostics);
    AnalysisReport {
        pair: format!("{} -> {}", src.name, dst.name),
        diagnostics,
        nests,
    }
}

/// Lints a format descriptor in isolation: shape consistency, signature
/// presence/arity ([`Code::Sa009`]), and the window-role monotonicity
/// requirement ([`Code::Sa006`]). The full catalog must lint clean; this
/// is the `scripts/check.sh` gate.
pub fn lint_descriptor(desc: &FormatDescriptor) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let shape = |msg: String| Diagnostic::new(Code::Sa009, msg).with_stmt(&desc.name);

    if desc.dim_syms.len() != desc.rank {
        out.push(shape(format!(
            "`{}` declares rank {} but {} dimension symbols",
            desc.name,
            desc.rank,
            desc.dim_syms.len()
        )));
    }
    if desc.coord_ufs.len() != desc.rank {
        out.push(shape(format!(
            "`{}` declares rank {} but {} coordinate-UF slots",
            desc.name,
            desc.rank,
            desc.coord_ufs.len()
        )));
    }
    if let Some(scan) = &desc.scan {
        if scan.dense_pos.len() != desc.rank {
            out.push(shape(format!(
                "`{}` scan maps {} dense positions for rank {}",
                desc.name,
                scan.dense_pos.len(),
                desc.rank
            )));
        }
    }
    for uf in desc.coord_ufs.iter().flatten() {
        if !desc.ufs.contains(uf) {
            out.push(shape(format!(
                "`{}` names coordinate UF `{uf}` without a registered signature",
                desc.name
            )));
        }
    }

    // Collect every UF call mentioned by the descriptor's relations.
    let mut constraints: Vec<Constraint> = Vec::new();
    for conj in desc.sparse_to_dense.conjunctions() {
        constraints.extend(conj.constraints.iter().cloned());
    }
    for conj in desc.data_access.conjunctions() {
        constraints.extend(conj.constraints.iter().cloned());
    }
    let mut scan_constraints: Vec<Constraint> = Vec::new();
    if let Some(scan) = &desc.scan {
        for conj in scan.set.conjunctions() {
            scan_constraints.extend(conj.constraints.iter().cloned());
        }
    }
    let mut all = constraints.clone();
    all.extend(scan_constraints.iter().cloned());
    let mut calls = refute::collect_calls(&all);
    if let Some(scan) = &desc.scan {
        refute::collect_calls_in_expr(&scan.data_index, &mut calls);
    }

    let mut reported: BTreeSet<String> = BTreeSet::new();
    for call in &calls {
        match desc.ufs.get(&call.name) {
            None => {
                if reported.insert(call.name.clone()) {
                    out.push(
                        Diagnostic::new(
                            Code::Sa009,
                            format!(
                                "`{}` uses UF `{}` without a registered signature",
                                desc.name, call.name
                            ),
                        )
                        .with_stmt(&desc.name),
                    );
                }
            }
            Some(sig) => {
                if sig.arity != call.args.len() && reported.insert(call.name.clone()) {
                    out.push(shape(format!(
                        "`{}` calls `{}` with {} argument(s); signature declares arity {}",
                        desc.name,
                        call.name,
                        call.args.len(),
                        sig.arity
                    )));
                }
            }
        }
    }
    for sig in desc.ufs.iter() {
        if sig.domain.arity() as usize != sig.arity {
            out.push(shape(format!(
                "`{}`: UF `{}` has arity {} but a domain of arity {}",
                desc.name,
                sig.name,
                sig.arity,
                sig.domain.arity()
            )));
        }
        if sig.range.arity() != 1 {
            out.push(shape(format!(
                "`{}`: UF `{}` has a range of arity {} (expected 1)",
                desc.name,
                sig.name,
                sig.range.arity()
            )));
        }
    }

    // Window role: a UF appearing with both signs across the descriptor's
    // inequality constraints bounds an iteration window from both sides
    // (`rowptr(i) <= k < rowptr(i+1)`); without a declared monotonic
    // quantifier those windows can overlap and no plan over them is safe.
    let mut signs: std::collections::BTreeMap<String, (bool, bool)> =
        std::collections::BTreeMap::new();
    for c in constraints.iter().chain(scan_constraints.iter()) {
        let Constraint::Geq(e) = c else { continue };
        for (coeff, atom) in &e.terms {
            if let spf_ir::Atom::Uf(u) = atom {
                let entry = signs.entry(u.name.clone()).or_insert((false, false));
                if *coeff > 0 {
                    entry.0 = true;
                } else {
                    entry.1 = true;
                }
            }
        }
    }
    for (name, (pos, neg)) in signs {
        if !(pos && neg) {
            continue;
        }
        if let Some(sig) = desc.ufs.get(&name) {
            if sig.monotonicity.is_none() {
                out.push(
                    Diagnostic::new(
                        Code::Sa006,
                        format!(
                            "`{}`: UF `{name}` bounds an iteration window from both \
                             sides but declares no monotonic quantifier; windows may \
                             overlap and no conversion plan over them is safe",
                            desc.name
                        ),
                    )
                    .with_stmt(&desc.name)
                    .with_relation(
                        spf_ir::Monotonicity::NonDecreasing.quantifier_text(&name),
                    ),
                );
            }
        }
    }
    out
}

/// Shared context for the plan passes.
pub(crate) struct Ctx<'a> {
    pub src: &'a FormatDescriptor,
    pub dst: &'a FormatDescriptor,
    pub synth: &'a UfEnvironment,
    /// Facts that hold for every statement: the size symbols of both
    /// formats are non-negative by construction.
    pub axioms: Vec<Constraint>,
}

impl<'a> Ctx<'a> {
    pub fn new(
        src: &'a FormatDescriptor,
        dst: &'a FormatDescriptor,
        synth: &'a UfEnvironment,
    ) -> Self {
        let mut axioms = Vec::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let syms = src
            .dim_syms
            .iter()
            .chain(dst.dim_syms.iter())
            .chain([&src.nnz_sym, &dst.nnz_sym])
            .chain(src.extra_syms.iter())
            .chain(dst.extra_syms.iter());
        for sym in syms {
            if seen.insert(sym.as_str()) {
                axioms.push(Constraint::ge(LinExpr::sym(sym.clone()), LinExpr::zero()));
            }
        }
        Ctx { src, dst, synth, axioms }
    }

    /// A prover over all three UF environments (destination wins on
    /// collision, but synthesis renames collisions away anyway).
    pub fn prover(&self) -> Prover<'a> {
        let mut p = Prover::new();
        p.add_env(&self.dst.ufs);
        p.add_env(&self.src.ufs);
        p.add_env(self.synth);
        p
    }

    /// Looks up a UF signature across destination, source, and synthesis
    /// environments.
    pub fn lookup(&self, name: &str) -> Option<&'a UfSignature> {
        self.dst
            .ufs
            .get(name)
            .or_else(|| self.src.ufs.get(name))
            .or_else(|| self.synth.get(name))
    }
}

/// One conjunction of a statement's iteration space, flattened into a
/// plain constraint system with the find binding folded in.
///
/// Variable layout: tuple variables `0..arity`, then (if the statement has
/// a find) the find variable at position `arity`, then the existentials
/// shifted up by one. `tuple_len` counts the *iteration order* positions
/// (tuple + find), which is what the dependence pass case-splits over.
pub(crate) struct StmtSystem {
    pub constraints: Vec<Constraint>,
    pub names: Vec<String>,
    pub tuple_len: usize,
    pub n_vars: usize,
}

/// Flattens each conjunction of `stmt`'s iteration space (plus the find
/// binding and the global axioms) into a [`StmtSystem`].
pub(crate) fn stmt_systems(stmt: &Stmt, axioms: &[Constraint]) -> Vec<StmtSystem> {
    let arity = stmt.iter_space.arity();
    stmt.iter_space
        .conjunctions()
        .iter()
        .map(|conj| {
            let mut names: Vec<String> = stmt.iter_space.tuple().to_vec();
            let mut constraints: Vec<Constraint>;
            let tuple_len;
            let n_vars;
            match &stmt.find {
                None => {
                    constraints = conj.constraints.clone();
                    tuple_len = arity as usize;
                    n_vars = conj.n_vars() as usize;
                }
                Some(f) => {
                    // Make room for the find variable at position `arity`.
                    let mut sh = |v: VarId| {
                        if v.0 >= arity {
                            LinExpr::var(VarId(v.0 + 1))
                        } else {
                            LinExpr::var(v)
                        }
                    };
                    constraints =
                        conj.constraints.iter().map(|c| c.map_vars(&mut sh)).collect();
                    let d = LinExpr::var(VarId(arity));
                    constraints.push(Constraint::ge(d.clone(), f.lo.map_vars(&mut sh)));
                    constraints.push(Constraint::lt(d.clone(), f.hi.map_vars(&mut sh)));
                    constraints.push(Constraint::eq(
                        LinExpr::uf(UfCall::new(f.uf.clone(), vec![d])),
                        f.target.map_vars(&mut sh),
                    ));
                    names.push(f.var.clone());
                    tuple_len = arity as usize + 1;
                    n_vars = conj.n_vars() as usize + 1;
                }
            }
            names.extend(conj.exists().iter().cloned());
            constraints.extend_from_slice(axioms);
            StmtSystem { constraints, names, tuple_len, n_vars }
        })
        .collect()
}

/// The index/value expressions a kernel evaluates per iteration (setup
/// kernels evaluate none).
pub(crate) fn kernel_exprs(kernel: &Kernel) -> Vec<&LinExpr> {
    match kernel {
        Kernel::UfWrite { idx, value, .. }
        | Kernel::UfMin { idx, value, .. }
        | Kernel::UfMax { idx, value, .. } => vec![idx, value],
        Kernel::ListInsert { args, .. } => args.iter().collect(),
        Kernel::DataAxpy { y_idx, a_idx, x_idx, .. } => vec![y_idx, a_idx, x_idx],
        Kernel::Copy { dst_idx, src_idx, .. } => vec![dst_idx, src_idx],
        _ => Vec::new(),
    }
}
