//! Pass 3: ordering and monotonicity checks.
//!
//! * **SA006** — a destination UF with a declared monotonic quantifier
//!   must have that quantifier *established* by the plan: pointer-style
//!   UFs populated by `UfMin`/`UfMax` need an enforcement sweep after
//!   population (and conversely, min/max-populated UFs without any
//!   declared monotonicity are rejected — nothing constrains the result);
//!   UFs materialized from a value list need the list sorted (and
//!   deduplicated, for strictly increasing quantifiers).
//! * **SA007** — a destination order key must be established: either the
//!   plan builds the permutation `P` with a matching comparator, width,
//!   and finalize, or the source traversal order already implies the key
//!   and the data is contiguous (identity-eliminated plans).

use sparse_synthesis::PERM_NAME;
use spf_computation::{Computation, Kernel, ListOrderSpec};
use spf_ir::{Comparator, Monotonicity};

use crate::diag::{Code, Diagnostic};
use crate::Ctx;

pub(crate) fn check(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    check_monotonicity(comp, cx, out);
    check_order_key(comp, cx, out);
}

fn check_monotonicity(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for sig in cx.dst.ufs.iter() {
        let name = &sig.name;
        // Population by min/max bounds vs. the enforcement sweep (which is
        // itself a `UfMin` whose value reads the UF it writes).
        let mut populated_at: Vec<usize> = Vec::new();
        let mut sweeps_at: Vec<usize> = Vec::new();
        for (i, stmt) in comp.stmts.iter().enumerate() {
            if let Kernel::UfMin { uf, value, .. } | Kernel::UfMax { uf, value, .. } =
                &stmt.kernel
            {
                if uf != name {
                    continue;
                }
                if value.mentions_uf(name) {
                    sweeps_at.push(i);
                } else {
                    populated_at.push(i);
                }
            }
        }
        if !populated_at.is_empty() {
            match sig.monotonicity {
                None => out.push(
                    Diagnostic::new(
                        Code::Sa006,
                        format!(
                            "`{name}` is populated by min/max bounds but its \
                             descriptor declares no monotonic quantifier; nothing \
                             constrains rows the scan never visits"
                        ),
                    )
                    .with_relation(Monotonicity::NonDecreasing.quantifier_text(name)),
                ),
                Some(m) => {
                    let last = *populated_at.iter().max().unwrap();
                    if !sweeps_at.iter().any(|&s| s > last) {
                        out.push(
                            Diagnostic::new(
                                Code::Sa006,
                                format!(
                                    "monotonic quantifier on `{name}` is declared but \
                                     the plan has no enforcement sweep after \
                                     population; empty rows would keep init values"
                                ),
                            )
                            .with_relation(m.quantifier_text(name)),
                        );
                    }
                }
            }
        }

        // Population by list materialization: the list's declared order
        // must establish the quantifier.
        for stmt in &comp.stmts {
            let Kernel::ListToUf { list, uf, .. } = &stmt.kernel else { continue };
            if uf != name {
                continue;
            }
            let decl = comp.stmts.iter().find_map(|s| match &s.kernel {
                Kernel::ListDecl { list: l, order, unique, .. } if l == list => {
                    Some((order.clone(), *unique))
                }
                _ => None,
            });
            let Some((order, unique)) = decl else {
                out.push(
                    Diagnostic::new(
                        Code::Sa006,
                        format!("list `{list}` is materialized into `{name}` but never declared"),
                    )
                    .with_stmt(&stmt.label),
                );
                continue;
            };
            let established = match sig.monotonicity {
                None => true,
                Some(Monotonicity::NonDecreasing) => {
                    matches!(order, ListOrderSpec::Lexicographic)
                }
                Some(Monotonicity::Increasing) => {
                    matches!(order, ListOrderSpec::Lexicographic) && unique
                }
            };
            if !established {
                let m = sig.monotonicity.expect("checked above");
                out.push(
                    Diagnostic::new(
                        Code::Sa006,
                        format!(
                            "`{name}` declares a monotonic quantifier but is \
                             materialized from list `{list}` which is not sorted{}",
                            if m == Monotonicity::Increasing { " and deduplicated" } else { "" }
                        ),
                    )
                    .with_stmt(&stmt.label)
                    .with_relation(m.quantifier_text(name)),
                );
            }
        }
    }
}

/// The list ordering a comparator demands.
fn comparator_spec(c: &Comparator) -> ListOrderSpec {
    match c {
        Comparator::Lexicographic => ListOrderSpec::Lexicographic,
        Comparator::Morton => ListOrderSpec::Morton,
        Comparator::UserFn(name) => ListOrderSpec::Custom(name.clone()),
    }
}

fn check_order_key(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let Some(key) = &cx.dst.order else { return };
    let decl = comp.stmts.iter().enumerate().find_map(|(i, s)| match &s.kernel {
        Kernel::ListDecl { list, width, order, .. } if list == PERM_NAME => {
            Some((i, *width, order.clone()))
        }
        _ => None,
    });
    let Some((_, width, order)) = decl else {
        // No permutation: the source traversal order must already emit
        // nonzeros in destination order, from contiguous storage.
        let implied =
            cx.src.contiguous_data && cx.src.order.as_ref().is_some_and(|o| o.implies(key));
        if !implied {
            out.push(
                Diagnostic::new(
                    Code::Sa007,
                    format!(
                        "destination `{}` orders nonzeros by {key} but the plan \
                         builds no permutation and the source order does not imply it",
                        cx.dst.name
                    ),
                )
                .with_relation(key.quantifier_text(&coord_names(cx))),
            );
        }
        return;
    };
    let expected = comparator_spec(&key.comparator);
    if order != expected {
        out.push(
            Diagnostic::new(
                Code::Sa007,
                format!(
                    "permutation `{PERM_NAME}` is sorted {} but the destination \
                     order key requires {}",
                    spec_name(&order),
                    spec_name(&expected)
                ),
            )
            .with_relation(key.quantifier_text(&coord_names(cx))),
        );
    }
    if width != key.dims.len() {
        out.push(Diagnostic::new(
            Code::Sa007,
            format!(
                "permutation `{PERM_NAME}` has width {width} but the order key \
                 compares {} dimension(s)",
                key.dims.len()
            ),
        ));
    }
    let mut last_insert = None;
    for (i, s) in comp.stmts.iter().enumerate() {
        if let Kernel::ListInsert { list, args } = &s.kernel {
            if list == PERM_NAME {
                last_insert = Some(i);
                if args.len() != width {
                    out.push(
                        Diagnostic::new(
                            Code::Sa007,
                            format!(
                                "insert into `{PERM_NAME}` provides {} key value(s) \
                                 for width {width}",
                                args.len()
                            ),
                        )
                        .with_stmt(&s.label),
                    );
                }
            }
        }
    }
    let Some(last_insert) = last_insert else {
        out.push(Diagnostic::new(
            Code::Sa007,
            format!("permutation `{PERM_NAME}` is declared but never populated"),
        ));
        return;
    };
    let finalized = comp.stmts.iter().enumerate().any(|(i, s)| {
        i > last_insert
            && matches!(&s.kernel, Kernel::ListFinalize { list } if list == PERM_NAME)
    });
    if !finalized {
        out.push(Diagnostic::new(
            Code::Sa007,
            format!(
                "permutation `{PERM_NAME}` is never finalized after its last insert; \
                 the sort that establishes the destination order never runs"
            ),
        ));
    }
}

/// Coordinate names for rendering the order-key quantifier.
fn coord_names(cx: &Ctx<'_>) -> Vec<String> {
    cx.dst
        .coord_ufs
        .iter()
        .enumerate()
        .map(|(d, uf)| uf.clone().unwrap_or_else(|| format!("x{d}")))
        .collect()
}

fn spec_name(s: &ListOrderSpec) -> String {
    match s {
        ListOrderSpec::Insertion => "by insertion order".into(),
        ListOrderSpec::Lexicographic => "lexicographically".into(),
        ListOrderSpec::Morton => "by Morton order".into(),
        ListOrderSpec::Custom(f) => format!("by custom comparator `{f}`"),
    }
}
