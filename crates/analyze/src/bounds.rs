//! Pass 2: domain, range, and allocation bounds proofs.
//!
//! For every non-setup statement and every conjunction of its iteration
//! space (with the find binding folded in), the pass discharges:
//!
//! * **SA003** — every UF call's arguments lie in the declared domain;
//! * **SA004** — every value written through `UfWrite`/`UfMin`/`UfMax`
//!   lies in the declared range of the written UF;
//! * **SA005** — every store index lies inside the written UF's
//!   allocation, and every `Copy` data access lies inside the data
//!   array's allocation.
//!
//! Proofs are entailments against the iteration system via the refutation
//! engine. When an allocation is a *product* of two size symbols (ELL's
//! `ELLW * NR`, DIA's `ND * NR`), a direct linear proof of
//! `0 <= e < F0*F1` is impossible, so the pass falls back to a
//! **mixed-radix window decomposition**: split `e = q*stride + r`
//! syntactically and prove `0 <= r < stride` and `0 <= q < other`
//! instead, which implies the product bound.
//!
//! * **SA009** — any UF call whose name has no signature anywhere
//!   (destination, source, synthesis) is reported once as a note.

use std::collections::BTreeSet;

use sparse_formats::descriptors::domain_alloc_size;
use spf_computation::{Computation, Kernel};
use spf_ir::{Atom, Constraint, LinExpr, UfCall, UfSignature};

use crate::diag::{Code, Diagnostic};
use crate::refute::{collect_calls, collect_calls_in_expr, Prover};
use crate::{kernel_exprs, stmt_systems, Ctx, StmtSystem};

pub(crate) fn check(comp: &Computation, cx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let prover = cx.prover();
    let mut missing: BTreeSet<String> = BTreeSet::new();
    // Identical obligations recur across fused statements sharing a
    // space; deduplicate on the rendered diagnostic.
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut push = |out: &mut Vec<Diagnostic>, d: Diagnostic| {
        if emitted.insert(d.render()) {
            out.push(d);
        }
    };

    for stmt in &comp.stmts {
        if stmt.kernel.is_setup() {
            continue;
        }
        for sys in stmt_systems(stmt, &cx.axioms) {
            // SA003: every call argument in the declared domain.
            let mut calls = collect_calls(&sys.constraints);
            for e in kernel_exprs(&stmt.kernel) {
                collect_calls_in_expr(e, &mut calls);
            }
            for call in &calls {
                let Some(sig) = cx.lookup(&call.name) else {
                    missing.insert(call.name.clone());
                    continue;
                };
                if sig.arity != call.args.len() {
                    push(
                        out,
                        Diagnostic::new(
                            Code::Sa009,
                            format!(
                                "`{}` called with {} argument(s); signature declares \
                                 arity {}",
                                call.name,
                                call.args.len(),
                                sig.arity
                            ),
                        )
                        .with_stmt(&stmt.label),
                    );
                    continue;
                }
                for d in prove_within_domain(
                    &prover,
                    &sys,
                    call,
                    sig,
                    Code::Sa003,
                    &format!("argument of `{}` not provably in its domain", call.name),
                ) {
                    push(out, d.with_stmt(&stmt.label));
                }
            }

            // SA004 + SA005 for stores.
            if let Kernel::UfWrite { uf, idx, value }
            | Kernel::UfMin { uf, idx, value }
            | Kernel::UfMax { uf, idx, value } = &stmt.kernel
            {
                if let Some(sig) = cx.lookup(uf) {
                    for d in prove_within_range(&prover, &sys, value, sig) {
                        push(out, d.with_stmt(&stmt.label));
                    }
                    let store = UfCall::new(uf.clone(), vec![idx.clone()]);
                    for d in prove_within_domain(
                        &prover,
                        &sys,
                        &store,
                        sig,
                        Code::Sa005,
                        &format!("store to `{uf}` not provably within its allocation"),
                    ) {
                        push(out, d.with_stmt(&stmt.label));
                    }
                }
            }

            // SA005 for data accesses.
            if let Kernel::Copy { dst, dst_idx, src, src_idx } = &stmt.kernel {
                for (arr, idx) in [(dst, dst_idx), (src, src_idx)] {
                    let factors = if *arr == cx.dst.data_name {
                        &cx.dst.data_size
                    } else if *arr == cx.src.data_name {
                        &cx.src.data_size
                    } else {
                        continue;
                    };
                    for d in prove_data_access(&prover, &sys, arr, idx, factors) {
                        push(out, d.with_stmt(&stmt.label));
                    }
                }
            }
        }
    }

    for name in missing {
        out.push(Diagnostic::new(
            Code::Sa009,
            format!("UF `{name}` is used without a registered signature"),
        ));
    }
}

/// Proves that `call`'s arguments satisfy the declared domain of `sig`,
/// returning a diagnostic per unproven constraint. Unary interval domains
/// whose extent is a two-symbol product get the window fallback.
fn prove_within_domain(
    prover: &Prover<'_>,
    sys: &StmtSystem,
    call: &UfCall,
    sig: &UfSignature,
    code: Code,
    msg: &str,
) -> Vec<Diagnostic> {
    let conjs = sig.domain.conjunctions();
    let [conj] = conjs else { return Vec::new() };
    if !conj.exists().is_empty() {
        return Vec::new();
    }
    let goals: Vec<Constraint> = conj
        .constraints
        .iter()
        .map(|c| {
            c.map_vars(&mut |v| {
                call.args.get(v.index()).cloned().unwrap_or_else(|| LinExpr::var(v))
            })
        })
        .collect();
    let unproved: Vec<&Constraint> =
        goals.iter().filter(|g| !prover.entails(&sys.constraints, g)).collect();
    if unproved.is_empty() {
        return Vec::new();
    }
    // Window fallback: the whole `[0, F0*F1)` interval at once.
    if call.args.len() == 1 && goals.len() == 2 {
        if let Some((f0, f1)) = domain_alloc_size(sig).as_ref().and_then(two_sym_factors) {
            if window_within(prover, &sys.constraints, &call.args[0], &f0, &f1) {
                return Vec::new();
            }
        }
    }
    unproved
        .into_iter()
        .map(|g| {
            Diagnostic::new(code, msg.to_string())
                .with_relation(format!("requires {}", g.display_with(&sys.names)))
        })
        .collect()
}

/// Proves that a written `value` satisfies the declared range of `sig`.
fn prove_within_range(
    prover: &Prover<'_>,
    sys: &StmtSystem,
    value: &LinExpr,
    sig: &UfSignature,
) -> Vec<Diagnostic> {
    let conjs = sig.range.conjunctions();
    let [conj] = conjs else { return Vec::new() };
    if !conj.exists().is_empty() || sig.range.arity() != 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in &conj.constraints {
        let goal = c.map_vars(&mut |v| {
            if v.0 == 0 {
                value.clone()
            } else {
                LinExpr::var(v)
            }
        });
        if !prover.entails(&sys.constraints, &goal) {
            out.push(
                Diagnostic::new(
                    Code::Sa004,
                    format!(
                        "value written to `{}` not provably in its declared range",
                        sig.name
                    ),
                )
                .with_relation(format!("requires {}", goal.display_with(&sys.names))),
            );
        }
    }
    out
}

/// Proves that a data access index lies in `[0, Π factors)`.
fn prove_data_access(
    prover: &Prover<'_>,
    sys: &StmtSystem,
    arr: &str,
    idx: &LinExpr,
    factors: &[LinExpr],
) -> Vec<Diagnostic> {
    let lower = Constraint::ge(idx.clone(), LinExpr::zero());
    let ok = match factors {
        [single] => {
            prover.entails(&sys.constraints, &lower)
                && prover.entails(&sys.constraints, &Constraint::lt(idx.clone(), single.clone()))
        }
        [a, b] => {
            let direct = prover.entails(&sys.constraints, &lower)
                && prover
                    .entails(&sys.constraints, &Constraint::lt(idx.clone(), a.mul_expr(b)));
            direct
                || match (single_sym(a), single_sym(b)) {
                    (Some(fa), Some(fb)) => {
                        window_within(prover, &sys.constraints, idx, &fa, &fb)
                    }
                    _ => false,
                }
        }
        // Higher-rank data allocations are out of scope for this prover;
        // leave them unchecked rather than warn on every access.
        _ => true,
    };
    if ok {
        Vec::new()
    } else {
        vec![Diagnostic::new(
            Code::Sa005,
            format!("access to data array `{arr}` not provably within its allocation"),
        )
        .with_relation(format!("index {}", idx.display_with(&sys.names)))]
    }
}

/// `Some((a, b))` when `e` is exactly the product `a * b` of two symbols.
fn two_sym_factors(e: &LinExpr) -> Option<(String, String)> {
    if e.constant != 0 || e.terms.len() != 1 {
        return None;
    }
    let (coeff, atom) = &e.terms[0];
    if *coeff != 1 {
        return None;
    }
    let Atom::Prod(fs) = atom else { return None };
    match fs.as_slice() {
        [Atom::Sym(a), Atom::Sym(b)] => Some((a.clone(), b.clone())),
        _ => None,
    }
}

/// `Some(name)` when `e` is exactly one symbol.
fn single_sym(e: &LinExpr) -> Option<String> {
    if e.constant != 0 || e.terms.len() != 1 {
        return None;
    }
    match &e.terms[0] {
        (1, Atom::Sym(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Mixed-radix window proof of `0 <= e < f0 * f1`.
///
/// Picks one factor as the stride and splits `e = q*stride + r` by moving
/// every term whose product atom contains the stride symbol into `q`
/// (with the symbol stripped). If `0 <= r <= stride-1` and
/// `0 <= q <= other-1` are all entailed, then
/// `e <= (other-1)*stride + stride-1 < other*stride` and `e >= 0`.
fn window_within(
    prover: &Prover<'_>,
    sys: &[Constraint],
    e: &LinExpr,
    f0: &str,
    f1: &str,
) -> bool {
    for (stride, other) in [(f0, f1), (f1, f0)] {
        let Some((q, r)) = split_by_stride(e, stride) else { continue };
        let s = LinExpr::sym(stride.to_string());
        let o = LinExpr::sym(other.to_string());
        if prover.entails(sys, &Constraint::ge(r.clone(), LinExpr::zero()))
            && prover.entails(sys, &Constraint::lt(r.clone(), s))
            && prover.entails(sys, &Constraint::ge(q.clone(), LinExpr::zero()))
            && prover.entails(sys, &Constraint::lt(q.clone(), o))
        {
            return true;
        }
    }
    false
}

/// Splits `e` into `(q, r)` with `e = q*stride + r` exactly, where `q`
/// collects the terms containing the stride symbol (stripped once).
/// Returns `None` when no term mentions the stride.
fn split_by_stride(e: &LinExpr, stride: &str) -> Option<(LinExpr, LinExpr)> {
    let mut q = LinExpr::zero();
    let mut r = LinExpr::constant(e.constant);
    let mut found = false;
    for (coeff, atom) in &e.terms {
        let stripped = match atom {
            Atom::Prod(fs) => fs
                .iter()
                .position(|f| matches!(f, Atom::Sym(s) if s == stride))
                .map(|pos| {
                    let mut rest = fs.clone();
                    rest.remove(pos);
                    match rest.len() {
                        0 => LinExpr::constant(*coeff),
                        1 => LinExpr::term(*coeff, rest.into_iter().next().unwrap()),
                        _ => LinExpr::term(*coeff, Atom::Prod(rest)),
                    }
                }),
            _ => None,
        };
        match stripped {
            Some(t) => {
                q.add_assign(&t);
                found = true;
            }
            None => r.add_assign(&LinExpr::term(*coeff, atom.clone())),
        }
    }
    found.then_some((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spf_ir::VarId;

    #[test]
    fn window_discharges_two_factor_bound() {
        // 0 <= i < NR && 0 <= s < ELLW  ⊢  0 <= ELLW*i + s < ELLW*NR
        let i = LinExpr::var(VarId(0));
        let s = LinExpr::var(VarId(1));
        let sys = vec![
            Constraint::ge(i.clone(), LinExpr::zero()),
            Constraint::lt(i.clone(), LinExpr::sym("NR")),
            Constraint::ge(s.clone(), LinExpr::zero()),
            Constraint::lt(s.clone(), LinExpr::sym("ELLW")),
        ];
        let e = LinExpr::sym("ELLW").mul_expr(&i).add(&s);
        let prover = Prover::new();
        assert!(window_within(&prover, &sys, &e, "ELLW", "NR"));
        // Dropping the inner bound breaks the proof.
        assert!(!window_within(&prover, &sys[..3], &e, "ELLW", "NR"));
    }

    #[test]
    fn split_is_exact() {
        let i = LinExpr::var(VarId(0));
        let s = LinExpr::var(VarId(1));
        let e = LinExpr::sym("W").mul_expr(&i).add(&s).add(&LinExpr::constant(3));
        let (q, r) = split_by_stride(&e, "W").unwrap();
        assert_eq!(q, i);
        assert_eq!(r, s.add(&LinExpr::constant(3)));
        assert!(split_by_stride(&e, "Z").is_none());
    }
}
