//! Pass 4: dependence analysis and parallelism classification.
//!
//! Statements are grouped into loop nests exactly the way `lower()`
//! fuses them (consecutive non-setup statements sharing a fuse group and
//! iteration space; find-bearing statements nest alone with the find
//! variable as an extra innermost position). For each nest, every pair of
//! accesses to the same name — where at least one is a write — is tested
//! for a loop-carried conflict on a **doubled system**: two copies of the
//! iteration constraints (the primed copy with variables shifted), the
//! access indices equated, and a lexicographic case split over strictly
//! earlier iterations. If the refutation engine kills every case, the
//! pair cannot conflict across iterations.
//!
//! Same-iteration conflicts between fused statements are *excluded*: the
//! statements execute in program order within one iteration, which is
//! preserved by any schedule that keeps the loop body intact.
//!
//! Verdicts form a lattice `Parallel < Reduction < Sequential`; a nest
//! takes the worst verdict among its surviving conflicts. Min/min,
//! max/max, and accumulate self-conflicts commute (Reduction), as do
//! inserts into a sorted list; everything else is Sequential. Non-parallel
//! nests additionally emit an **SA008** note.

use spf_computation::{Computation, Kernel, ListOrderSpec, Stmt};
use spf_ir::{Constraint, LinExpr, VarId};

use crate::diag::{Code, Diagnostic};
use crate::refute::Prover;
use crate::{stmt_systems, Ctx, NestReport, Parallelism, StmtSystem};

pub(crate) fn classify(
    comp: &Computation,
    cx: &Ctx<'_>,
    out: &mut Vec<Diagnostic>,
) -> Vec<NestReport> {
    let mut normalized = comp.clone();
    normalized.normalize_groups();
    let stmts = &normalized.stmts;

    let mut nests = Vec::new();
    let mut i = 0;
    while i < stmts.len() {
        if stmts[i].kernel.is_setup() {
            i += 1;
            continue;
        }
        let head = &stmts[i];
        let mut members = vec![i];
        let mut j = i + 1;
        while head.find.is_none()
            && j < stmts.len()
            && stmts[j].fuse_group == head.fuse_group
            && !stmts[j].kernel.is_setup()
            && stmts[j].find.is_none()
            && stmts[j].iter_space == head.iter_space
        {
            members.push(j);
            j += 1;
        }
        nests.push(analyze_nest(stmts, &members, cx, out));
        i = j;
    }
    nests
}

/// One indexed access inside a nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    /// Plain store (`uf[idx] = v`, `Copy`).
    Assign,
    /// `uf[idx] = min(uf[idx], v)` — commutative and idempotent.
    Min,
    /// `uf[idx] = max(uf[idx], v)`.
    Max,
    /// `y[idx] += a*x` — commutative accumulation.
    Acc,
    /// Read.
    Read,
}

struct Access {
    name: String,
    idx: LinExpr,
    kind: AccessKind,
}

fn analyze_nest(
    stmts: &[Stmt],
    members: &[usize],
    cx: &Ctx<'_>,
    out: &mut Vec<Diagnostic>,
) -> NestReport {
    let label = members
        .iter()
        .map(|&m| stmts[m].label.as_str())
        .collect::<Vec<_>>()
        .join(" + ");
    let systems = stmt_systems(&stmts[members[0]], &cx.axioms);
    let prover = cx.prover();

    // Names written through an index in this nest: only accesses to these
    // can participate in a loop-carried conflict.
    let mut written: Vec<String> = Vec::new();
    for &m in members {
        match &stmts[m].kernel {
            Kernel::UfWrite { uf, .. }
            | Kernel::UfMin { uf, .. }
            | Kernel::UfMax { uf, .. } => written.push(uf.clone()),
            Kernel::Copy { dst, .. } => written.push(dst.clone()),
            Kernel::DataAxpy { y, .. } => written.push(y.clone()),
            _ => {}
        }
    }

    let mut verdict = Parallelism::Parallel;
    let mut reasons: Vec<String> = Vec::new();
    let mut bump = |verdict: &mut Parallelism, v: Parallelism, reason: String| {
        if v > *verdict {
            *verdict = v;
        }
        reasons.push(reason);
    };

    let mut accesses: Vec<Access> = Vec::new();
    for &m in members {
        let stmt = &stmts[m];
        match &stmt.kernel {
            Kernel::UfWrite { uf, idx, .. } => accesses.push(Access {
                name: uf.clone(),
                idx: idx.clone(),
                kind: AccessKind::Assign,
            }),
            Kernel::UfMin { uf, idx, .. } => accesses.push(Access {
                name: uf.clone(),
                idx: idx.clone(),
                kind: AccessKind::Min,
            }),
            Kernel::UfMax { uf, idx, .. } => accesses.push(Access {
                name: uf.clone(),
                idx: idx.clone(),
                kind: AccessKind::Max,
            }),
            Kernel::Copy { dst, dst_idx, src, src_idx } => {
                accesses.push(Access {
                    name: dst.clone(),
                    idx: dst_idx.clone(),
                    kind: AccessKind::Assign,
                });
                if written.contains(src) {
                    accesses.push(Access {
                        name: src.clone(),
                        idx: src_idx.clone(),
                        kind: AccessKind::Read,
                    });
                }
            }
            Kernel::DataAxpy { y, y_idx, a, a_idx, x, x_idx } => {
                accesses.push(Access {
                    name: y.clone(),
                    idx: y_idx.clone(),
                    kind: AccessKind::Acc,
                });
                for (n, ix) in [(a, a_idx), (x, x_idx)] {
                    if written.contains(n) {
                        accesses.push(Access {
                            name: n.clone(),
                            idx: ix.clone(),
                            kind: AccessKind::Read,
                        });
                    }
                }
            }
            Kernel::ListInsert { list, .. } => {
                let order = stmts.iter().find_map(|s| match &s.kernel {
                    Kernel::ListDecl { list: l, order, .. } if l == list => {
                        Some(order.clone())
                    }
                    _ => None,
                });
                match order {
                    Some(ListOrderSpec::Insertion) | None => bump(
                        &mut verdict,
                        Parallelism::Sequential,
                        format!(
                            "inserts into `{list}` whose insertion order is semantic"
                        ),
                    ),
                    Some(_) => bump(
                        &mut verdict,
                        Parallelism::Reduction,
                        format!(
                            "inserts into `{list}` commute up to its finalize sort"
                        ),
                    ),
                }
            }
            _ => {}
        }
        // Value/index expressions reading a UF that this nest writes
        // (e.g. the monotonicity sweep reading its own pointer array).
        let mut calls = Vec::new();
        for e in crate::kernel_exprs(&stmt.kernel) {
            crate::refute::collect_calls_in_expr(e, &mut calls);
        }
        for call in calls {
            if call.args.len() == 1 && written.contains(&call.name) {
                accesses.push(Access {
                    name: call.name.clone(),
                    idx: call.args[0].clone(),
                    kind: AccessKind::Read,
                });
            }
        }
    }

    'pairs: for ai in 0..accesses.len() {
        for bi in ai..accesses.len() {
            let (a, b) = (&accesses[ai], &accesses[bi]);
            if a.name != b.name {
                continue;
            }
            if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                continue;
            }
            let candidate = match (a.kind, b.kind) {
                (AccessKind::Min, AccessKind::Min)
                | (AccessKind::Max, AccessKind::Max)
                | (AccessKind::Acc, AccessKind::Acc) => Parallelism::Reduction,
                _ => Parallelism::Sequential,
            };
            if candidate <= verdict {
                continue;
            }
            if conflicts(&prover, &systems, a, b, ai == bi) {
                let what = match candidate {
                    Parallelism::Reduction => "commutative loop-carried conflict",
                    _ => "loop-carried conflict",
                };
                bump(&mut verdict, candidate, format!("{what} on `{}`", a.name));
                if verdict == Parallelism::Sequential {
                    break 'pairs;
                }
            }
        }
    }

    let reason = if reasons.is_empty() {
        "no loop-carried dependences".to_string()
    } else {
        reasons.join("; ")
    };
    if verdict != Parallelism::Parallel {
        out.push(
            Diagnostic::new(
                Code::Sa008,
                format!("loop nest is {verdict}: {reason}"),
            )
            .with_stmt(&label),
        );
    }
    NestReport {
        label,
        stmt_indices: members.to_vec(),
        parallelism: verdict,
        reason,
    }
}

/// Tests whether accesses `a` (at iteration `x`) and `b` (at a strictly
/// different iteration `x'`) can touch the same location. Returns `false`
/// only when every lexicographic order case is refuted.
fn conflicts(
    prover: &Prover<'_>,
    systems: &[StmtSystem],
    a: &Access,
    b: &Access,
    same_access: bool,
) -> bool {
    for sys in systems {
        let off = sys.n_vars as u32;
        let mut base = sys.constraints.clone();
        base.extend(
            sys.constraints
                .iter()
                .map(|c| c.map_vars(&mut |v| LinExpr::var(VarId(v.0 + off)))),
        );
        let b_primed = b.idx.map_vars(&mut |v| LinExpr::var(VarId(v.0 + off)));
        base.push(Constraint::eq(a.idx.clone(), b_primed));
        if !all_orders_refuted(prover, &base, sys.tuple_len, off, false) {
            return true;
        }
        // For a self-pair the swapped direction is symmetric; for
        // distinct accesses both relative orders must be refuted.
        if !same_access && !all_orders_refuted(prover, &base, sys.tuple_len, off, true) {
            return true;
        }
    }
    false
}

/// Case-splits `x ≺ x'` (or `x' ≺ x` when `swapped`) lexicographically
/// over the iteration-order positions and refutes every case.
fn all_orders_refuted(
    prover: &Prover<'_>,
    base: &[Constraint],
    tuple_len: usize,
    off: u32,
    swapped: bool,
) -> bool {
    for d in 0..tuple_len {
        let mut sys = base.to_vec();
        for t in 0..d {
            sys.push(Constraint::eq(
                LinExpr::var(VarId(t as u32)),
                LinExpr::var(VarId(t as u32 + off)),
            ));
        }
        let (lo, hi) = if swapped {
            (d as u32 + off, d as u32)
        } else {
            (d as u32, d as u32 + off)
        };
        sys.push(Constraint::lt(LinExpr::var(VarId(lo)), LinExpr::var(VarId(hi))));
        if !prover.refutes(&sys) {
            return false;
        }
    }
    true
}
