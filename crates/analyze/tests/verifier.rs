//! End-to-end verifier behavior over the format catalog:
//!
//! * every synthesizable catalog pair verifies with **zero errors** (and,
//!   as it happens, zero warnings — the prover discharges every bounds
//!   obligation the catalog generates);
//! * descriptor lints are clean for the whole catalog;
//! * a deliberately broken CSR (rowptr monotonicity dropped) is rejected
//!   at synthesis time with a specific SA006 diagnostic;
//! * the optimized `csr -> coo` populate nest is statically proved
//!   parallelizable;
//! * optimization preserves the verifier verdict: every pair whose naive
//!   plan verifies clean keeps verifying clean after optimization.

use sparse_analyze::{lint_descriptor, verify, verify_computation, Code, Parallelism};
use sparse_formats::{descriptors, FormatDescriptor};
use sparse_synthesis::{synthesize, PermutationKind, SynthesisOptions};

/// Every `(src, dst)` pair the conversion test-suite exercises. Sources
/// need an executable scan; `coo -> scoo` needs the suffix rename because
/// both endpoints use the same UF names.
fn catalog_pairs() -> Vec<(FormatDescriptor, FormatDescriptor)> {
    vec![
        (descriptors::scoo(), descriptors::csr()),
        (descriptors::coo(), descriptors::csr()),
        (descriptors::scoo(), descriptors::csc()),
        (descriptors::csr(), descriptors::csc()),
        (descriptors::csr(), descriptors::coo()),
        (descriptors::scoo(), descriptors::dia()),
        (descriptors::scoo(), descriptors::mcoo()),
        (descriptors::mcoo(), descriptors::csr()),
        (descriptors::ell(), descriptors::csr()),
        (descriptors::ell(), descriptors::coo()),
        (descriptors::coo(), descriptors::scoo().with_suffix("_d")),
        (descriptors::scoo3(), descriptors::mcoo3()),
        (descriptors::coo3(), descriptors::mcoo3()),
    ]
}

#[test]
fn catalog_descriptors_lint_clean() {
    for desc in [
        descriptors::coo(),
        descriptors::scoo(),
        descriptors::csr(),
        descriptors::csc(),
        descriptors::dia(),
        descriptors::mcoo(),
        descriptors::ell(),
        descriptors::bcsr(2, 2),
        descriptors::coo3(),
        descriptors::scoo3(),
        descriptors::mcoo3(),
    ] {
        let diags = lint_descriptor(&desc);
        assert!(
            diags.is_empty(),
            "descriptor `{}` should lint clean:\n{}",
            desc.name,
            diags.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
        );
    }
}

#[test]
fn catalog_pairs_verify_with_zero_errors() {
    for (src, dst) in catalog_pairs() {
        let conv = synthesize(&src, &dst, SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} -> {}: {e}", src.name, dst.name));
        let report = verify(&conv);
        assert!(
            report.is_clean(),
            "expected zero errors for {}:\n{}",
            report.pair,
            report.render()
        );
        assert_eq!(
            report.warning_count(),
            0,
            "expected zero warnings for {}:\n{}",
            report.pair,
            report.render()
        );
    }
}

#[test]
fn binary_search_plans_verify_too() {
    let opts = SynthesisOptions { binary_search: true, ..Default::default() };
    let conv = synthesize(&descriptors::scoo(), &descriptors::dia(), opts).unwrap();
    let report = verify(&conv);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.warning_count(), 0, "{}", report.render());
}

/// Dropping rowptr's monotonic quantifier must be caught statically: the
/// windows `rowptr(i) <= k < rowptr(i+1)` could then overlap, and no plan
/// that populates rowptr by min/max bounds can establish anything.
#[test]
fn broken_csr_is_rejected_with_sa006() {
    let mut broken = descriptors::csr();
    let mut rowptr = broken.ufs.get("rowptr").expect("csr has rowptr").clone();
    rowptr.monotonicity = None;
    broken.ufs.insert(rowptr);

    // The descriptor lint alone already flags the window role.
    let lint = lint_descriptor(&broken);
    assert!(
        lint.iter().any(|d| d.code == Code::Sa006),
        "expected SA006 from descriptor lint:\n{}",
        lint.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
    );

    // And a full plan against the broken descriptor fails verification.
    let conv =
        synthesize(&descriptors::scoo(), &broken, SynthesisOptions::default()).unwrap();
    let report = verify(&conv);
    assert!(!report.is_clean(), "broken CSR must not verify:\n{}", report.render());
    assert!(
        report.diagnostics.iter().any(|d| d.code == Code::Sa006),
        "expected SA006 in:\n{}",
        report.render()
    );
}

/// The optimized `csr -> coo` plan copies through the identity
/// permutation (`p = k`); proving its populate nest parallel takes the
/// full prover: rowptr window chaining across rows (monotonicity),
/// `col2` congruence, and the identity equalities.
#[test]
fn csr_to_coo_populate_nest_is_parallel() {
    let conv = synthesize(&descriptors::csr(), &descriptors::coo(), SynthesisOptions::default())
        .unwrap();
    assert!(
        matches!(conv.permutation, PermutationKind::Identity),
        "csr -> coo needs no permutation (unordered destination, contiguous source)"
    );
    let report = verify(&conv);
    assert!(report.is_clean(), "{}", report.render());
    let parallel: Vec<_> = report
        .nests
        .iter()
        .filter(|n| n.parallelism == Parallelism::Parallel)
        .collect();
    assert!(
        !parallel.is_empty(),
        "expected a statically parallel nest:\n{}",
        report.render()
    );
    assert!(
        parallel.iter().any(|n| n.label.contains("populate")),
        "the populate nest should be the parallel one:\n{}",
        report.render()
    );
    assert!(report.has_parallel_loop());
}

/// The rowptr enforcement sweep reads the entry its previous iteration
/// wrote: a genuine loop-carried flow dependence the verifier must keep
/// sequential.
#[test]
fn monotonicity_sweep_is_sequential() {
    let conv = synthesize(&descriptors::scoo(), &descriptors::csr(), SynthesisOptions::default())
        .unwrap();
    let report = verify(&conv);
    let sweep = report
        .nests
        .iter()
        .find(|n| n.label.contains("monotonic quantifier"))
        .expect("scoo -> csr has a rowptr sweep nest");
    assert_eq!(sweep.parallelism, Parallelism::Sequential, "{}", report.render());
    // ... and the verdict is surfaced as an SA008 note.
    assert!(report.diagnostics.iter().any(|d| d.code == Code::Sa008));
}

/// Satellite: `optimize` must preserve the verifier verdict — every
/// catalog pair whose naive plan verifies clean still verifies clean
/// after the optimization pipeline (redundancy elimination, identity
/// permutation elimination, DCE, fusion).
#[test]
fn optimization_preserves_clean_verdict() {
    for (src, dst) in catalog_pairs() {
        let conv = synthesize(&src, &dst, SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} -> {}: {e}", src.name, dst.name));
        let naive = verify_computation(&conv.naive, &conv.src, &conv.dst, &conv.synth_ufs);
        let optimized = verify(&conv);
        assert!(
            naive.is_clean(),
            "naive plan should verify clean for {}:\n{}",
            naive.pair,
            naive.render()
        );
        assert!(
            optimized.is_clean(),
            "optimization changed the verdict for {}:\nnaive:\n{}\noptimized:\n{}",
            optimized.pair,
            naive.render(),
            optimized.render()
        );
    }
}
