//! # sparse-synth
//!
//! A Rust reproduction of *"Code Synthesis for Sparse Tensor Format
//! Conversion and Optimization"* (CGO 2023): formal sparse tensor format
//! descriptors in the Sparse Polyhedral Framework, and automatic
//! synthesis of optimized conversion (inspector) code between them —
//! including formats with *reordering constraints* such as Morton-ordered
//! COO, which prior format abstractions cannot express.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ir`] — sets/relations with uninterpreted functions (IEGenLib/Omega
//!   substrate)
//! * [`codegen`] — polyhedra scanning, C emission, and the interpreter
//! * [`spf`] — the SPF-IR: computations and composable transformations
//! * [`formats`] — Table-1 format descriptors and runtime containers
//! * [`synthesis`] — the paper's contribution: the synthesis algorithm
//! * [`baselines`] — TACO/SPARSKIT/MKL/HiCOO comparator models
//! * [`matgen`] — synthetic evaluation data (Tables 3 and 4 twins)
//! * [`obs`] — observability: stage spans, event ring, histograms,
//!   metrics exposition
//!
//! ## Quickstart
//!
//! ```
//! use sparse_synth::formats::{descriptors, CooMatrix};
//! use sparse_synth::synthesis::{Conversion, SynthesisOptions};
//!
//! // Synthesize sorted-COO -> CSR (the paper's headline conversion).
//! let conv = Conversion::new(
//!     &descriptors::scoo(),
//!     &descriptors::csr(),
//!     SynthesisOptions::default(),
//! ).unwrap();
//!
//! // The optimizer proved the permutation is the identity and removed it.
//! assert!(conv.synth.identity_eliminated);
//!
//! // Run it on a real matrix.
//! let coo = CooMatrix::from_triplets(
//!     2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]).unwrap();
//! let (csr, _) = conv.run_coo_to_csr(&coo).unwrap();
//! assert_eq!(csr.rowptr, vec![0, 1, 2]);
//!
//! // Or inspect the synthesized C code.
//! println!("{}", conv.emit_c());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sparse_baselines as baselines;
pub use sparse_engine as engine;
pub use sparse_formats as formats;
pub use sparse_matgen as matgen;
pub use sparse_obs as obs;
pub use sparse_synthesis as synthesis;
pub use spf_codegen as codegen;
pub use spf_computation as spf;
pub use spf_ir as ir;
