#!/usr/bin/env bash
# Full local gate: release build, tests, and lint-clean clippy.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> no-panic gate: hardened crates deny unwrap/expect in non-test code"
# sparse-engine and sparse-formats carry crate-level
# #![deny(clippy::unwrap_used, clippy::expect_used)]; clippy.toml exempts
# #[cfg(test)] code. Any panicking escape hatch in production code fails
# this step. (The flags live in the crates, not on the command line,
# because trailing clippy flags leak into workspace-internal deps.)
cargo clippy -q -p sparse-engine -p sparse-formats --lib

echo "==> fault-injection suite (zero-panic execution contract)"
cargo test -q -p sparse-engine --test fault_injection
cargo test -q -p sparse-matgen corrupt

echo "==> observability suite (obs crate + span/counter/exposition contracts)"
# The sparse-obs unit tests (ring overflow accounting, histogram bucket
# edges, exposition formatting) plus the engine-level contracts: stage
# span coverage, exact counter semantics under faults and concurrency,
# and the metrics_text() snapshot (metric names are stable API).
cargo test -q -p sparse-obs
cargo test -q -p sparse-engine --test observability
cargo test -q -p sparse-engine --test concurrency

echo "==> differential suite (kernel/interpreter bit-identity)"
cargo test -q -p sparse-synthesis --test differential
cargo test -q -p sparse-engine --test backend

echo "==> cargo run --release --example lint_descriptor (static-analysis gate)"
# Lints every catalog descriptor and statically verifies every
# synthesizable conversion plan; exits nonzero on any error or warning.
cargo run --release --example lint_descriptor

echo "All checks passed."
