#!/usr/bin/env bash
# Full local gate: release build, tests, and lint-clean clippy.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run --release --example lint_descriptor (static-analysis gate)"
# Lints every catalog descriptor and statically verifies every
# synthesizable conversion plan; exits nonzero on any error or warning.
cargo run --release --example lint_descriptor

echo "All checks passed."
