#!/usr/bin/env bash
# Benchmark driver: runs the criterion benches in quick mode (the
# vendored criterion shim is already sample-bounded; quick mode just
# trims the matrix subset via the benches' own constants) and then the
# kernel-vs-interpreter measurement, emitting BENCH_4.json at the repo
# root (per-pair ns/nnz for both backends plus speedups).
#
# Usage: scripts/bench.sh [--full]
#   default: quick — small matrices for the JSON artifact (fast sanity)
#   --full:  the acceptance configuration (10k x 10k, 1M nnz)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-quick}"

echo "==> criterion benches (quick mode)"
cargo bench -q -p sparse-bench --bench fig2_conversions
cargo bench -q -p sparse-bench --bench table4_morton

echo "==> kernel backend vs interpreter (BENCH_4.json)"
if [ "$MODE" = "--full" ]; then
    cargo run -q --release -p sparse-bench --bin bench4 -- --out BENCH_4.json
else
    cargo run -q --release -p sparse-bench --bin bench4 -- \
        --n 2000 --nnz 200000 --reps 3 --out BENCH_4.json
fi

echo "Wrote BENCH_4.json"
